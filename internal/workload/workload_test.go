package workload

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/vclock"
)

func testEnv() *Env {
	return &Env{Clock: vclock.NewScaled(time.Microsecond), Compute: true}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"sleep", "mdrun", "stress"} {
		if _, err := r.Lookup(name); err != nil {
			t.Fatalf("builtin %q missing: %v", name, err)
		}
	}
	if _, err := r.Lookup("specfem"); err == nil {
		t.Fatal("unregistered kernel resolved")
	}
	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryDuplicateRejected(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(SleepKernel{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestSleepKernelSleepsVirtualDuration(t *testing.T) {
	clock := vclock.NewManual()
	env := &Env{Clock: clock}
	done := make(chan Result, 1)
	go func() {
		res, _ := SleepKernel{}.Run(context.Background(), Spec{Duration: 100 * time.Second}, env)
		done <- res
	}()
	select {
	case <-done:
		t.Fatal("sleep returned before virtual time advanced")
	case <-time.After(20 * time.Millisecond):
	}
	clock.Advance(100 * time.Second)
	select {
	case res := <-done:
		if res.ExitCode != 0 {
			t.Fatalf("exit = %d", res.ExitCode)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleep never returned")
	}
}

func TestSleepKernelCancel(t *testing.T) {
	cancel := make(chan struct{})
	env := &Env{Clock: vclock.NewManual(), Cancel: cancel}
	done := make(chan Result, 1)
	go func() {
		res, _ := SleepKernel{}.Run(context.Background(), Spec{Duration: time.Hour}, env)
		done <- res
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case res := <-done:
		if res.ExitCode == 0 {
			t.Fatal("cancelled sleep exited 0")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled sleep never returned")
	}
}

func TestMDRunProducesEnergy(t *testing.T) {
	res, err := MDRunKernel{}.Run(context.Background(),
		Spec{UID: "t", Arguments: []string{"-nsteps", "20"}, Seed: 7}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d: %s", res.ExitCode, res.Output)
	}
	if res.Output == "" {
		t.Fatal("no output")
	}
}

func TestMDRunDeterministicForSeed(t *testing.T) {
	e1 := LJEnergy(32, 25, 99)
	e2 := LJEnergy(32, 25, 99)
	if e1 != e2 {
		t.Fatalf("same seed, different energies: %v vs %v", e1, e2)
	}
	e3 := LJEnergy(32, 25, 100)
	if e1 == e3 {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestMDRunEnergyConservation(t *testing.T) {
	// Velocity Verlet on a smooth potential must conserve energy to within
	// a small drift over a short trajectory.
	short := LJEnergy(32, 5, 3)
	long := LJEnergy(32, 200, 3)
	if math.IsNaN(short) || math.IsNaN(long) {
		t.Fatal("energy is NaN")
	}
	drift := math.Abs(long - short)
	scale := math.Max(1, math.Abs(short))
	if drift/scale > 0.05 {
		t.Fatalf("energy drift %.3f (short %.4f, long %.4f)", drift/scale, short, long)
	}
}

func TestStressKernelRuns(t *testing.T) {
	res, err := StressKernel{}.Run(context.Background(),
		Spec{Arguments: []string{"-iters", "10000"}}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestStressKernelRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := StressKernel{}.Run(ctx, Spec{Arguments: []string{"-iters", "100000000"}}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode == 0 {
		t.Fatal("cancelled stress exited 0")
	}
}

func TestComputeOffSkipsArithmetic(t *testing.T) {
	env := &Env{Clock: vclock.NewScaled(time.Microsecond), Compute: false}
	start := time.Now()
	res, err := MDRunKernel{}.Run(context.Background(),
		Spec{Arguments: []string{"-nsteps", "1000000"}}, env) // would be slow if computed
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("compute=false still performed the MD integration")
	}
}
