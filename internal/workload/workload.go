// Package workload implements the task executables the paper's experiments
// run. Sleep and GROMACS mdrun "enable control of the duration of task
// execution and to compare EnTK overheads across task executables" (§IV);
// Specfem and CAnalogs kernels are contributed by the use-case packages
// through the same registry, which keeps EnTK agnostic of what a task runs.
package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Spec is what a kernel receives about its task.
type Spec struct {
	// Environment carries the task's environment variables to the kernel.
	Environment map[string]string
	UID         string
	Arguments   []string
	// Duration is the nominal virtual runtime.
	Duration time.Duration
	Cores    int
	Seed     int64
}

// Env gives kernels access to the simulated environment.
type Env struct {
	// Clock provides virtual time; kernels sleep their nominal duration on
	// it.
	Clock vclock.Clock
	// Compute enables the kernel's real computation (bounded, laptop
	// scale). Off, kernels only model time — the right setting for
	// large-scale experiments.
	Compute bool
	// Cancel aborts a sleeping kernel when closed.
	Cancel <-chan struct{}
}

// Result is a kernel's outcome.
type Result struct {
	ExitCode int
	Output   string
}

// Kernel is one executable implementation.
type Kernel interface {
	// Name is the executable name tasks reference.
	Name() string
	// Run executes the kernel.
	Run(ctx context.Context, spec Spec, env *Env) (Result, error)
}

// Registry maps executable names to kernels. The zero value is unusable;
// use NewRegistry, which installs the built-ins.
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]Kernel
}

// NewRegistry returns a registry with the built-in kernels (sleep, mdrun,
// stress) installed.
func NewRegistry() *Registry {
	r := &Registry{kernels: make(map[string]Kernel)}
	r.MustRegister(SleepKernel{})
	r.MustRegister(MDRunKernel{})
	r.MustRegister(StressKernel{})
	return r
}

// Register adds a kernel; duplicate names fail.
func (r *Registry) Register(k Kernel) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kernels[k.Name()]; dup {
		return fmt.Errorf("workload: kernel %q already registered", k.Name())
	}
	r.kernels[k.Name()] = k
	return nil
}

// MustRegister panics on duplicate registration; for package setup.
func (r *Registry) MustRegister(k Kernel) {
	if err := r.Register(k); err != nil {
		panic(err)
	}
}

// Lookup resolves an executable name.
func (r *Registry) Lookup(name string) (Kernel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.kernels[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown executable %q", name)
	}
	return k, nil
}

// Names lists registered kernels, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.kernels))
	for n := range r.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sleepFor waits the spec's nominal duration on the virtual clock,
// returning false if cancelled first.
func sleepFor(spec Spec, env *Env) bool {
	if spec.Duration <= 0 {
		return true
	}
	if env.Cancel == nil {
		env.Clock.Sleep(spec.Duration)
		return true
	}
	select {
	case <-env.Clock.After(spec.Duration):
		return true
	case <-env.Cancel:
		return false
	}
}

// SleepKernel is /bin/sleep: it occupies its cores for the nominal duration
// and does nothing else. The paper uses it to isolate overheads from
// computation.
type SleepKernel struct{}

// Name implements Kernel.
func (SleepKernel) Name() string { return "sleep" }

// Run implements Kernel.
func (SleepKernel) Run(ctx context.Context, spec Spec, env *Env) (Result, error) {
	if !sleepFor(spec, env) {
		return Result{ExitCode: 143, Output: "terminated"}, nil
	}
	return Result{ExitCode: 0, Output: "slept " + spec.Duration.String()}, nil
}

// MDRunKernel stands in for GROMACS mdrun, the ensemble-MD executable of the
// scaling experiments. Besides occupying its cores for the nominal duration,
// it can integrate a small Lennard-Jones system with velocity Verlet so the
// executable performs real molecular-dynamics arithmetic (energies are
// reported in reduced units).
type MDRunKernel struct{}

// Name implements Kernel.
func (MDRunKernel) Name() string { return "mdrun" }

// mdrunParticles is the LJ system size; intentionally small — the kernel
// must be cheap enough to run thousands of times inside experiments.
const mdrunParticles = 32

// Run implements Kernel.
func (MDRunKernel) Run(ctx context.Context, spec Spec, env *Env) (Result, error) {
	steps := 50
	for i, a := range spec.Arguments {
		if a == "-nsteps" && i+1 < len(spec.Arguments) {
			if v, err := strconv.Atoi(spec.Arguments[i+1]); err == nil && v >= 0 {
				steps = v
			}
		}
	}
	var energy float64
	if env.Compute {
		energy = runLJ(mdrunParticles, steps, spec.Seed)
		if math.IsNaN(energy) || math.IsInf(energy, 0) {
			return Result{ExitCode: 1, Output: "mdrun: integration diverged"}, nil
		}
	}
	if !sleepFor(spec, env) {
		return Result{ExitCode: 143, Output: "terminated"}, nil
	}
	return Result{ExitCode: 0, Output: fmt.Sprintf("mdrun: %d steps, E=%.4f", steps, energy)}, nil
}

// runLJ integrates an N-particle Lennard-Jones fluid in a cubic periodic box
// and returns the final total energy (reduced units).
func runLJ(n, steps int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	const (
		box = 6.0
		dt  = 0.002
	)
	pos := make([][3]float64, n)
	vel := make([][3]float64, n)
	frc := make([][3]float64, n)
	// Lattice start to avoid overlaps, small random velocities.
	side := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := box / float64(side)
	for i := 0; i < n; i++ {
		pos[i] = [3]float64{
			(float64(i%side) + 0.5) * spacing,
			(float64((i/side)%side) + 0.5) * spacing,
			(float64(i/(side*side)) + 0.5) * spacing,
		}
		for d := 0; d < 3; d++ {
			vel[i][d] = (rng.Float64() - 0.5) * 0.1
		}
	}
	forces := func() float64 {
		var pot float64
		for i := range frc {
			frc[i] = [3]float64{}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var dr [3]float64
				var r2 float64
				for d := 0; d < 3; d++ {
					x := pos[i][d] - pos[j][d]
					x -= box * math.Round(x/box) // minimum image
					dr[d] = x
					r2 += x * x
				}
				if r2 < 1e-12 {
					continue
				}
				inv2 := 1.0 / r2
				inv6 := inv2 * inv2 * inv2
				inv12 := inv6 * inv6
				pot += 4 * (inv12 - inv6)
				f := (48*inv12 - 24*inv6) * inv2
				for d := 0; d < 3; d++ {
					frc[i][d] += f * dr[d]
					frc[j][d] -= f * dr[d]
				}
			}
		}
		return pot
	}
	pot := forces()
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				vel[i][d] += 0.5 * dt * frc[i][d]
				pos[i][d] += dt * vel[i][d]
				pos[i][d] = math.Mod(math.Mod(pos[i][d], box)+box, box)
			}
		}
		pot = forces()
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				vel[i][d] += 0.5 * dt * frc[i][d]
			}
		}
	}
	var kin float64
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			kin += 0.5 * vel[i][d] * vel[i][d]
		}
	}
	return kin + pot
}

// LJEnergy exposes the MD integrator for tests (energy conservation checks).
func LJEnergy(n, steps int, seed int64) float64 { return runLJ(n, steps, seed) }

// StressKernel burns real CPU for a caller-controlled number of iterations
// ("-iters N"); used by throughput benchmarks where tasks must cost real
// work rather than virtual time.
type StressKernel struct{}

// Name implements Kernel.
func (StressKernel) Name() string { return "stress" }

// Run implements Kernel.
func (StressKernel) Run(ctx context.Context, spec Spec, env *Env) (Result, error) {
	iters := 1000
	for i, a := range spec.Arguments {
		if a == "-iters" && i+1 < len(spec.Arguments) {
			if v, err := strconv.Atoi(spec.Arguments[i+1]); err == nil && v >= 0 {
				iters = v
			}
		}
	}
	acc := 0.0
	for i := 0; i < iters; i++ {
		acc += math.Sqrt(float64(i + 1))
		if i%4096 == 0 {
			select {
			case <-ctx.Done():
				return Result{ExitCode: 130, Output: "interrupted"}, nil
			default:
			}
		}
	}
	if !sleepFor(spec, env) {
		return Result{ExitCode: 143, Output: "terminated"}, nil
	}
	return Result{ExitCode: 0, Output: fmt.Sprintf("stress: %d iters, acc=%.1f", iters, acc)}, nil
}
