package entk

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// A management-bound workload under a tight starting batch must trip the
// queue-pressure rule: the controller grows the batch knob live, every
// decision lands on the event stream as an EventKnob, and the final
// snapshot carries the changed operating point.
func TestAutotuneStagesLiveKnobChanges(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		// Generous walltime: at the starting per-message batch the RTS
		// model's per-submit costs dominate, and the pilot must survive
		// until the controller has grown the batch out of that regime.
		Resource:  Resource{Name: "supermic", Cores: 4, Walltime: 24 * time.Hour},
		TimeScale: 20 * time.Microsecond,
		HostName:  "null",
		Tuning: Tuning{
			BatchSize: 1, // the worst static point: per-message batching
			Autotune: Autotune{
				Enabled:  true,
				Interval: 200 * time.Millisecond,
				MinBatch: 1,
				MaxBatch: 256,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := am.AddPipelines(smallApp(600, 20*time.Second)); err != nil {
		t.Fatal(err)
	}
	sub := am.Subscribe(EventFilter{Kinds: []EventKind{EventKnob}})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	run, err := am.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := run.Snapshot()
	if snap.TasksDone != 600 {
		t.Fatalf("%d/600 tasks done", snap.TasksDone)
	}
	if snap.KnobChanges == 0 {
		t.Fatal("controller made no knob changes under sustained pressure")
	}
	if snap.LiveBatchSize <= 1 {
		t.Fatalf("live batch = %d, want growth beyond the starting 1", snap.LiveBatchSize)
	}
	var knobEvents int
	for ev := range sub.C() {
		if ev.Kind != EventKnob {
			t.Fatalf("subscription leaked a %s event", ev.Kind)
		}
		if ev.Name != "batch" && ev.Name != "schedulers" {
			t.Fatalf("knob event names %q", ev.Name)
		}
		if !strings.HasPrefix(ev.UID, "autotune/") {
			t.Fatalf("knob event UID %q, want autotune/<reason>", ev.UID)
		}
		knobEvents++
	}
	if uint64(knobEvents) != snap.KnobChanges {
		t.Fatalf("%d knob events streamed, snapshot counts %d changes", knobEvents, snap.KnobChanges)
	}
}

// With Autotune off, the knob handle has collapsed bounds: the snapshot
// reports the static operating point and zero changes, and no knob events
// exist to subscribe to.
func TestAutotuneDisabledKnobsNeverMove(t *testing.T) {
	am, _, run := startSmallApp(t, 8, 5*time.Second)
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := run.Snapshot()
	if snap.KnobChanges != 0 {
		t.Fatalf("KnobChanges = %d with autotune off", snap.KnobChanges)
	}
	if snap.LiveBatchSize != 1024 {
		t.Fatalf("live batch = %d, want the static default 1024", snap.LiveBatchSize)
	}
	live := am.Core().LiveTuning()
	if _, _, changed := live.SetBatchSize(1); changed {
		t.Fatal("collapsed-bounds handle accepted a change")
	}
}

// Knob mutations racing a live run: external writers hammer both knobs
// through the core's handle while the workload executes. Run under -race
// (make test), this drives the scheduler park/unpark path and the hot-path
// atomic reads concurrently with the controller's own steering.
func TestLiveKnobMutationDuringRunRace(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "supermic", Cores: 8, Walltime: 24 * time.Hour},
		TimeScale: 20 * time.Microsecond,
		HostName:  "null",
		Tuning: Tuning{
			BatchSize:        16,
			SchedulerWorkers: 4,
			Autotune: Autotune{
				Enabled:       true,
				Interval:      100 * time.Millisecond,
				MinBatch:      1,
				MaxBatch:      512,
				MinSchedulers: 1,
				MaxSchedulers: 4,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := am.AddPipelines(smallApp(300, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	run, err := am.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	live := am.Core().LiveTuning()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				live.SetBatchSize(1 << uint((seed+i)%10))
				live.SetSchedulers(1 + (seed+i)%4)
			}
		}(w)
	}
	err = run.Wait()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	snap := run.Snapshot()
	if snap.TasksDone != 300 {
		t.Fatalf("%d/300 tasks done under knob churn", snap.TasksDone)
	}
	if b := live.BatchSize(); b < 1 || b > 512 {
		t.Fatalf("batch %d escaped its bounds", b)
	}
	if s := live.Schedulers(); s < 1 || s > 4 {
		t.Fatalf("schedulers %d escaped its bounds", s)
	}
}

// The new per-knob bounds checks report typed *KnobError values.
func TestTuningKnobErrors(t *testing.T) {
	cases := []struct {
		name string
		tun  Tuning
		knob string
	}{
		{"negative batch", Tuning{BatchSize: -5}, "BatchSize"},
		{"schedulers beyond shard capacity", Tuning{QueueShards: 2, SchedulerWorkers: 17}, "SchedulerWorkers"},
		{"negative autotune interval", Tuning{Autotune: Autotune{Interval: -time.Second}}, "Autotune.Interval"},
		{"negative autotune min batch", Tuning{Autotune: Autotune{MinBatch: -1}}, "Autotune.MinBatch"},
		{"autotune max below min", Tuning{Autotune: Autotune{MinBatch: 64, MaxBatch: 8}}, "Autotune.MaxBatch"},
		{"autotune scheduler ceiling beyond shards", Tuning{QueueShards: 1, Autotune: Autotune{MaxSchedulers: 9}}, "Autotune.MaxSchedulers"},
		{"autotune max schedulers below min", Tuning{Autotune: Autotune{MinSchedulers: 3, MaxSchedulers: 2}}, "Autotune.MaxSchedulers"},
	}
	for _, c := range cases {
		err := c.tun.Validate()
		var ke *KnobError
		if !errors.As(err, &ke) {
			t.Errorf("%s: got %v, want a *KnobError", c.name, err)
			continue
		}
		if ke.Knob != c.knob {
			t.Errorf("%s: error names knob %q, want %q", c.name, ke.Knob, c.knob)
		}
		if !strings.Contains(err.Error(), c.knob) {
			t.Errorf("%s: message %q does not mention %q", c.name, err, c.knob)
		}
	}
	// The scheduler bound scales with the shard count: 16 loops over 2
	// shards is exactly the 8-per-shard limit, so it is legal.
	if err := (Tuning{QueueShards: 2, SchedulerWorkers: 16}).Validate(); err != nil {
		t.Fatalf("16 schedulers over 2 shards rejected: %v", err)
	}
	// A zero Autotune block stays the default sentinel.
	if err := (Tuning{Autotune: Autotune{Enabled: true}}).Validate(); err != nil {
		t.Fatalf("enabled autotune with default bounds rejected: %v", err)
	}
}
