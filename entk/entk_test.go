package entk

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestCIsCatalogued(t *testing.T) {
	cis := CIs()
	if len(cis) != 4 {
		t.Fatalf("CIs = %v", cis)
	}
}

func TestNewAppManagerValidation(t *testing.T) {
	if _, err := NewAppManager(AppConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewAppManager(AppConfig{Resource: Resource{Name: "frontier", Cores: 1, Walltime: time.Hour}}); err == nil {
		t.Fatal("unknown CI accepted")
	}
	if _, err := NewAppManager(AppConfig{
		Resource: Resource{Name: "comet", Cores: 8, Walltime: time.Hour},
		HostName: "laptop-of-unknown-provenance",
	}); err == nil {
		t.Fatal("unknown host model accepted")
	}
}

func smallApp(tasks int, dur time.Duration) *Pipeline {
	p := NewPipeline("app")
	s := NewStage("stage")
	for i := 0; i < tasks; i++ {
		task := NewTask(fmt.Sprintf("t%02d", i))
		task.Executable = "sleep"
		task.Duration = dur
		s.AddTask(task) //nolint:errcheck
	}
	p.AddStage(s) //nolint:errcheck
	return p
}

func TestEndToEndRun(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:    Resource{Name: "supermic", Cores: 8, Walltime: time.Hour},
		TimeScale:   50 * time.Microsecond,
		TaskRetries: 1,
		HostName:    "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := smallApp(8, 20*time.Second)
	if err := am.AddPipelines(pipe); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if pipe.State() != PipelineDone {
		t.Fatalf("pipeline state = %s", pipe.State())
	}
	rep := am.Report()
	if rep.TaskExecution <= 0 {
		t.Fatalf("no execution window: %+v", rep)
	}
	if rep.RTSOverhead <= 0 {
		t.Fatalf("no RTS overhead recorded: %+v", rep)
	}
}

// TestBatchSizeKnob runs the same application at several batch sizes,
// including 1 (the per-message path) — the knob must change only broker
// traffic shape, never the outcome.
func TestBatchSizeKnob(t *testing.T) {
	for _, batch := range []int{1, 3, 64} {
		am, err := NewAppManager(AppConfig{
			Resource:  Resource{Name: "supermic", Cores: 8, Walltime: time.Hour},
			TimeScale: 50 * time.Microsecond,
			HostName:  "null",
			BatchSize: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		pipe := smallApp(10, 5*time.Second)
		if err := am.AddPipelines(pipe); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := am.Run(ctx); err != nil {
			cancel()
			t.Fatalf("batch=%d: %v", batch, err)
		}
		cancel()
		if pipe.State() != PipelineDone {
			t.Fatalf("batch=%d: pipeline state = %s", batch, pipe.State())
		}
		for _, task := range pipe.Stages()[0].Tasks() {
			if task.State() != TaskDone {
				t.Fatalf("batch=%d: task %s state = %s", batch, task.UID, task.State())
			}
		}
	}
}

func TestCustomKernelRegistration(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "comet", Cores: 4, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
		Kernels:   []workload.Kernel{testKernel{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline("custom")
	s := NewStage("s")
	task := NewTask("t")
	task.Executable = "test-kernel"
	task.Duration = time.Second
	s.AddTask(task)       //nolint:errcheck
	pipe.AddStage(s)      //nolint:errcheck
	am.AddPipelines(pipe) //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if task.State() != TaskDone {
		t.Fatalf("task state = %s", task.State())
	}
}

type testKernel struct{}

func (testKernel) Name() string { return "test-kernel" }
func (testKernel) Run(ctx context.Context, spec workload.Spec, env *workload.Env) (workload.Result, error) {
	env.Clock.Sleep(spec.Duration)
	return workload.Result{ExitCode: 0, Output: "ok"}, nil
}

func TestDuplicateKernelRejected(t *testing.T) {
	if _, err := NewAppManager(AppConfig{
		Resource: Resource{Name: "comet", Cores: 4, Walltime: time.Hour},
		Kernels:  []workload.Kernel{workload.SleepKernel{}},
	}); err == nil {
		t.Fatal("duplicate 'sleep' kernel accepted")
	}
}

func TestHostDefaultsFollowPaper(t *testing.T) {
	// Titan runs are driven from the ORNL login node by default; XSEDE runs
	// from the TACC VM. Observable through the management overhead.
	runOn := func(ci string) float64 {
		am, err := NewAppManager(AppConfig{
			Resource:  Resource{Name: ci, Cores: 4, Walltime: time.Hour},
			TimeScale: 20 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		am.AddPipelines(smallApp(4, 5*time.Second)) //nolint:errcheck
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := am.Run(ctx); err != nil {
			t.Fatal(err)
		}
		return am.Report().EnTKManagement
	}
	if titan, supermic := runOn("titan"), runOn("supermic"); titan >= supermic {
		t.Fatalf("titan mgmt %v not below supermic %v (host defaults wrong)", titan, supermic)
	}
}

func TestHeterogeneousResources(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:       Resource{Name: "titan", Cores: 1024, Walltime: time.Hour},
		ExtraResources: []Resource{{Name: "comet", Cores: 24, Walltime: time.Hour}},
		TimeScale:      20 * time.Microsecond,
		HostName:       "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline("hetero")
	sim := NewStage("sim")
	big := NewTask("big")
	big.Executable = "sleep"
	big.Duration = 10 * time.Second
	big.CPUReqs = CPUReqs{Processes: 512}
	big.Tags = map[string]string{"resource": "titan"}
	sim.AddTask(big)   //nolint:errcheck
	pipe.AddStage(sim) //nolint:errcheck
	proc := NewStage("proc")
	small := NewTask("small")
	small.Executable = "sleep"
	small.Duration = 5 * time.Second
	small.Tags = map[string]string{"resource": "comet"}
	proc.AddTask(small)   //nolint:errcheck
	pipe.AddStage(proc)   //nolint:errcheck
	am.AddPipelines(pipe) //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if big.State() != TaskDone || small.State() != TaskDone {
		t.Fatalf("states: big=%s small=%s", big.State(), small.State())
	}
}

func TestHeterogeneousUnknownExtraCI(t *testing.T) {
	if _, err := NewAppManager(AppConfig{
		Resource:       Resource{Name: "titan", Cores: 16, Walltime: time.Hour},
		ExtraResources: []Resource{{Name: "perlmutter", Cores: 16, Walltime: time.Hour}},
	}); err == nil {
		t.Fatal("unknown extra CI accepted")
	}
}

func TestFailingTasksFailPipeline(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "comet", Cores: 4, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline("doomed")
	s := NewStage("s")
	task := NewTask("t")
	task.Executable = "no-such-binary"
	task.Duration = time.Second
	task.MaxRetries = 0
	s.AddTask(task)       //nolint:errcheck
	pipe.AddStage(s)      //nolint:errcheck
	am.AddPipelines(pipe) //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := am.Run(ctx); err == nil {
		t.Fatal("run with unknown executable returned nil")
	}
	if task.State() != TaskFailed {
		t.Fatalf("task state = %s", task.State())
	}
	if task.ExitCode() != 127 {
		t.Fatalf("exit code = %d, want 127", task.ExitCode())
	}
}

func TestCampaignGroupsTransfersAndStateDB(t *testing.T) {
	// End-to-end coverage of the three §II extensions through the public
	// API: pipeline groups, transfer staging protocols and the external
	// state database.
	mk := func(name string, d time.Duration) *Pipeline {
		p := NewPipeline(name)
		s := NewStage("s")
		task := NewTask(name)
		task.Executable = "sleep"
		task.Duration = d
		task.OutputStaging = []StagingDirective{{
			Source: "out", Target: "archive:/out",
			Action: StagingTransfer, Bytes: 10 << 20, Protocol: "scp",
		}}
		if err := s.AddTask(task); err != nil {
			t.Fatal(err)
		}
		if err := p.AddStage(s); err != nil {
			t.Fatal(err)
		}
		return p
	}
	sim := mk("sim", 50*time.Second)
	post := mk("post", 20*time.Second)

	db := NewStateDB()
	am, err := NewAppManager(AppConfig{
		Resource:   Resource{Name: "comet", Cores: 8, Walltime: 24 * time.Hour},
		TimeScale:  20 * time.Microsecond,
		StateStore: db,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := am.AddPipelineGroups([]*Pipeline{sim}, []*Pipeline{post}); err != nil {
		t.Fatal(err)
	}
	if err := am.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Pipeline{sim, post} {
		if p.State() != PipelineDone {
			t.Fatalf("pipeline %s state = %s", p.Name, p.State())
		}
	}
	if got := len(db.UIDs("task")); got != 2 {
		t.Fatalf("state DB recorded %d tasks, want 2", got)
	}
	if rep := am.Report(); rep.DataStaging <= 0 {
		t.Fatalf("data staging = %v, want > 0 (scp transfers)", rep.DataStaging)
	}
}

func TestTitanPilotGetsGPUsByDefault(t *testing.T) {
	// A Titan pilot brings 1 GPU per allocated node, so a GPU task runs
	// without an explicit AppConfig GPU request.
	p := NewPipeline("gpu")
	s := NewStage("fwd")
	task := NewTask("specfem-like")
	task.Executable = "sleep"
	task.Duration = 30 * time.Second
	task.CPUReqs = CPUReqs{Processes: 16}
	task.GPUReqs = GPUReqs{Processes: 2}
	if err := s.AddTask(task); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage(s); err != nil {
		t.Fatal(err)
	}
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "titan", Cores: 32, Walltime: 2 * time.Hour},
		TimeScale: 20 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := am.AddPipelines(p); err != nil {
		t.Fatal(err)
	}
	if err := am.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if task.State() != TaskDone {
		t.Fatalf("GPU task state = %s (exit %d: %s)", task.State(), task.ExitCode(), task.ExecError())
	}
}

type envProbeKernel struct{ got chan string }

func (envProbeKernel) Name() string { return "env-probe" }
func (k envProbeKernel) Run(ctx context.Context, spec workload.Spec, env *workload.Env) (workload.Result, error) {
	k.got <- spec.Environment["OMP_NUM_THREADS"]
	return workload.Result{ExitCode: 0}, nil
}

func TestTaskEnvironmentReachesKernel(t *testing.T) {
	probe := envProbeKernel{got: make(chan string, 1)}
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "comet", Cores: 4, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
		Kernels:   []workload.Kernel{probe},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline("env")
	s := NewStage("s")
	task := NewTask("t")
	task.Executable = "env-probe"
	task.Environment = map[string]string{"OMP_NUM_THREADS": "16"}
	s.AddTask(task)       //nolint:errcheck
	pipe.AddStage(s)      //nolint:errcheck
	am.AddPipelines(pipe) //nolint:errcheck
	if err := am.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-probe.got:
		if v != "16" {
			t.Fatalf("kernel saw OMP_NUM_THREADS=%q, want 16", v)
		}
	default:
		t.Fatal("kernel never observed the environment")
	}
}
