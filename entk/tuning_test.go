package entk

import (
	"strings"
	"testing"
)

func TestTuningValidate(t *testing.T) {
	if err := (Tuning{}).Validate(); err != nil {
		t.Fatalf("zero tuning must be valid: %v", err)
	}
	ok := Tuning{
		Version:          CurrentTuningVersion,
		BatchSize:        64,
		QueueShards:      4,
		SchedulerWorkers: 2,
		WireFormat:       "json",
		SnapshotEvery:    -1, // negative disables snapshots — legal
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid tuning rejected: %v", err)
	}
	cases := []struct {
		name string
		tun  Tuning
		want string
	}{
		{"future version", Tuning{Version: CurrentTuningVersion + 1}, "version"},
		{"negative batch", Tuning{BatchSize: -1}, "BatchSize"},
		{"negative shards", Tuning{QueueShards: -1}, "QueueShards"},
		{"negative schedulers", Tuning{SchedulerWorkers: -1}, "SchedulerWorkers"},
		{"unknown wire format", Tuning{WireFormat: "xml"}, "wire format"},
	}
	for _, c := range cases {
		err := c.tun.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error mentioning %q", c.name, err, c.want)
		}
	}
}

// The deprecated AppConfig aliases override the embedded Tuning, keeping
// pre-Tuning callers' behavior byte-identical.
func TestTuningAliasPrecedence(t *testing.T) {
	cfg := AppConfig{
		Tuning: Tuning{
			BatchSize:        10,
			QueueShards:      2,
			SchedulerWorkers: 2,
			WireFormat:       "binary",
			SnapshotEvery:    100,
		},
		// Deprecated aliases, as an old caller would set them.
		BatchSize:        99,
		WireFormat:       "json",
		SchedulerWorkers: 7,
	}
	tun, err := cfg.effectiveTuning()
	if err != nil {
		t.Fatal(err)
	}
	if tun.BatchSize != 99 || tun.WireFormat != "json" || tun.SchedulerWorkers != 7 {
		t.Fatalf("aliases must win: %+v", tun)
	}
	if tun.QueueShards != 2 || tun.SnapshotEvery != 100 {
		t.Fatalf("unset aliases must not clobber Tuning: %+v", tun)
	}
}

// An invalid tuning is rejected at AppManager construction, before any
// infrastructure is built.
func TestTuningRejectedAtConstruction(t *testing.T) {
	_, err := NewAppManager(AppConfig{
		Resource: Resource{Name: "supermic", Cores: 4, Walltime: 3600e9},
		Tuning:   Tuning{WireFormat: "carrier-pigeon"},
	})
	if err == nil || !strings.Contains(err.Error(), "wire format") {
		t.Fatalf("want wire-format rejection, got %v", err)
	}
}
