package entk

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/journal"
	"repro/internal/msgcodec"
	"repro/internal/remoterts"
	"repro/internal/rts"
	"repro/internal/saga"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// startTestAgent boots an in-process entk-agent equivalent: its own scaled
// clock, simulated CI and SAGA session, hosting one pilot RTS incarnation
// per adopting manager. With auditDir set, each incarnation journals its
// store to rts-audit-NNN.log so exactly-once can be verified after a kill.
func startTestAgent(t *testing.T, name string, scale time.Duration, cores int, auditDir string) *remoterts.Agent {
	t.Helper()
	clock := vclock.NewScaled(scale)
	spec, err := hpc.LookupSpec("supermic")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := hpc.NewCluster(spec, clock)
	if err != nil {
		t.Fatal(err)
	}
	session := saga.NewSession()
	if err := session.Register(saga.NewClusterAdapter(cluster)); err != nil {
		cluster.Close()
		t.Fatal(err)
	}
	registry := workload.NewRegistry()
	var incarnation atomic.Int64
	factory := func(res core.ResourceDesc) (core.RTS, error) {
		cfg := rts.Config{
			Resource: res,
			Clock:    clock,
			Session:  session,
			Registry: registry,
			Seed:     1,
		}
		if auditDir != "" {
			cfg.StorePath = filepath.Join(auditDir, fmt.Sprintf("rts-audit-%03d.log", incarnation.Add(1)))
		}
		return rts.New(cfg)
	}
	a, err := remoterts.NewAgent(remoterts.AgentConfig{
		Addr:    "tcp:127.0.0.1:0",
		Name:    name,
		Factory: factory,
		// Walltime is virtual: at sub-millisecond time scales a 1h pilot
		// dies within a second of wall time, so give the agent's pilots
		// the CI's full 72h budget to survive wall-clock control-plane
		// delays (dial grace, failover detection).
		Resource:          core.ResourceDesc{Resource: "supermic", Cores: cores, Walltime: 72 * time.Hour},
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		cluster.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		cluster.Close()
	})
	return a
}

// remoteApp builds a one-stage ensemble of short tasks.
func remoteApp(tasks int, duration time.Duration) *Pipeline {
	p := NewPipeline("remote")
	s := NewStage("sweep")
	for i := 0; i < tasks; i++ {
		tk := NewTask(fmt.Sprintf("t%03d", i))
		tk.Executable = "sleep"
		tk.Duration = duration
		s.AddTask(tk)
	}
	p.AddStage(s)
	return p
}

// TestRemoteTwoAgents drives one manager against two remote agents over
// loopback TCP: the run must complete with every task DONE, work striped
// across both agents, and no frames stranded in flight.
func TestRemoteTwoAgents(t *testing.T) {
	scale := 200 * time.Microsecond
	a1 := startTestAgent(t, "agent-1", scale, 8, "")
	a2 := startTestAgent(t, "agent-2", scale, 8, "")

	am, err := NewAppManager(AppConfig{
		Resource:     Resource{Name: "supermic", Cores: 16, Walltime: time.Hour},
		TimeScale:    scale,
		HostName:     "null",
		RemoteAgents: []string{a1.Addr(), a2.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 32
	if err := am.AddPipelines(remoteApp(total, 2*time.Second)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		t.Fatal(err)
	}
	snap := am.Snapshot()
	if snap.TasksDone != total {
		t.Fatalf("conservation: %d/%d tasks done", snap.TasksDone, total)
	}
	if snap.Utilization.TasksInFlight != 0 {
		t.Fatalf("%d frames stranded in flight after the run", snap.Utilization.TasksInFlight)
	}
	if a1.Served() == 0 || a2.Served() == 0 {
		t.Fatalf("striping skipped an agent: served %d / %d", a1.Served(), a2.Served())
	}
	if a1.Served()+a2.Served() != total {
		t.Fatalf("agents served %d + %d results, want %d", a1.Served(), a2.Served(), total)
	}
}

// readAuditPushes replays every incarnation audit log in dir and returns
// the pushed task UIDs per incarnation (key = log index, 1-based).
func readAuditPushes(t *testing.T, dir string) map[int][]string {
	t.Helper()
	logs, err := filepath.Glob(filepath.Join(dir, "rts-audit-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(logs)
	out := map[int][]string{}
	for i, path := range logs {
		var uids []string
		err := journal.Replay(path, func(rec journal.Record) error {
			if rec.Type != "rts.store" {
				return nil
			}
			sr, err := msgcodec.DecodeStoreRec(rec.Data)
			if err != nil {
				return err
			}
			if sr.Op == "push" {
				uids = append(uids, sr.UIDs...)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[i+1] = uids
	}
	return out
}

// TestRemoteAgentDeathMidStage kills one of two agents while a stage is in
// flight. The heartbeat must declare the proxy dead, build a replacement
// that re-adopts the surviving agent (purging its previous incarnation),
// and resubmit the lost tasks — completing the run with every task DONE
// exactly once: no task that finished before the kill may be pushed to any
// post-kill RTS incarnation.
func TestRemoteAgentDeathMidStage(t *testing.T) {
	scale := 200 * time.Microsecond
	audit := t.TempDir()
	a1 := startTestAgent(t, "victim", scale, 8, "")
	a2 := startTestAgent(t, "survivor", scale, 8, audit)

	am, err := NewAppManager(AppConfig{
		Resource:     Resource{Name: "supermic", Cores: 16, Walltime: time.Hour},
		TimeScale:    scale,
		HostName:     "null",
		TaskRetries:  8,
		RTSRestarts:  4,
		RemoteAgents: []string{a1.Addr(), a2.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 80
	if err := am.AddPipelines(remoteApp(total, 5*time.Second)); err != nil {
		t.Fatal(err)
	}

	// Watch task completions; once a few tasks are DONE (the stage is
	// genuinely mid-flight), snapshot the DONE set and kill agent 1.
	sub := am.Subscribe(EventFilter{Kinds: []EventKind{EventTask}})
	var mu sync.Mutex
	preKillDone := map[string]bool{}
	killed := make(chan struct{})
	go func() {
		done := 0
		for ev := range sub.C() {
			if ev.To != string(TaskDone) {
				continue
			}
			done++
			if done <= 4 {
				// These completions committed before the kill below.
				mu.Lock()
				preKillDone[ev.UID] = true
				mu.Unlock()
			}
			if done == 4 {
				a1.Close()
				close(killed)
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		t.Fatal(err)
	}
	sub.Close()
	select {
	case <-killed:
	default:
		t.Fatal("run finished before the kill fired — shrink the task durations")
	}

	snap := am.Snapshot()
	if snap.TasksDone != total {
		t.Fatalf("conservation after agent death: %d/%d tasks done (%d failed)",
			snap.TasksDone, total, snap.TasksFailed)
	}
	if snap.Utilization.TasksInFlight != 0 {
		t.Fatalf("%d frames stranded in flight after the run", snap.Utilization.TasksInFlight)
	}
	if n := a2.Incarnations(); n < 2 {
		t.Fatalf("survivor hosted %d RTS incarnations, want >= 2 (purge-on-reconnect)", n)
	}

	// Exactly-once: the post-kill incarnations' audit logs must not contain
	// any task that completed before the kill — the manager only resubmits
	// lost in-flight work, never finished work.
	pushes := readAuditPushes(t, audit)
	if len(pushes) < 2 {
		t.Fatalf("expected >= 2 audit logs, got %d", len(pushes))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(preKillDone) == 0 {
		t.Fatal("no pre-kill completions recorded")
	}
	for inc, uids := range pushes {
		if inc == 1 {
			continue
		}
		for _, uid := range uids {
			if preKillDone[uid] {
				t.Fatalf("task %s was DONE before the kill but re-pushed to incarnation %d", uid, inc)
			}
		}
	}
}

// TestRemoteAttachStreams covers the event fan-out path end to end: a run
// serving its event stream over TCP, a remote subscriber attached to it,
// and per-peer accounting surfaced in the run's Progress snapshot.
func TestRemoteAttachStreams(t *testing.T) {
	scale := 200 * time.Microsecond
	a1 := startTestAgent(t, "agent-1", scale, 8, "")

	am, err := NewAppManager(AppConfig{
		Resource:     Resource{Name: "supermic", Cores: 8, Walltime: time.Hour},
		TimeScale:    scale,
		HostName:     "null",
		RemoteAgents: []string{a1.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := am.AddPipelines(remoteApp(8, 2*time.Second)); err != nil {
		t.Fatal(err)
	}
	es, err := remoterts.NewEventServer("tcp:127.0.0.1:0", am.Subscribe)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	am.AddEventPeerSource(es.PeerStats)

	stream, err := remoterts.AttachEvents(es.Addr(), EventFilter{
		Kinds: []EventKind{EventPipeline, EventStage},
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		t.Fatal(err)
	}

	// The remote subscriber must observe the pipeline reaching DONE.
	sawPipelineDone := false
	deadline := time.After(10 * time.Second)
	for !sawPipelineDone {
		select {
		case ev, ok := <-stream.C():
			if !ok {
				t.Fatal("stream ended before the pipeline finished")
			}
			if ev.Kind == EventPipeline && ev.To == string(PipelineDone) {
				sawPipelineDone = true
			}
		case <-deadline:
			t.Fatal("remote subscriber never saw the pipeline finish")
		}
	}

	peers := am.Snapshot().EventPeers
	if len(peers) != 1 {
		t.Fatalf("Progress.EventPeers has %d entries, want 1: %+v", len(peers), peers)
	}
	if peers[0].Sent == 0 {
		t.Fatalf("peer accounting recorded no sent events: %+v", peers[0])
	}
}
