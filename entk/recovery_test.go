package entk

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/msgcodec"
	"repro/internal/statedb"
)

// The chaos harness: run a durable application, kill it at a randomized
// point (Run.Cancel force-states without journaling — indistinguishable
// from a crash to the journal), resume from the journal directory, repeat
// until an incarnation completes uninterrupted. After every scenario the
// harness asserts the durability contract of docs/recovery.md:
//
//   - conservation: every task ends DONE and reconstruction from the
//     directory alone (snapshot + journal tail) agrees;
//   - exactly-once: no task recorded DONE before a kill is ever pushed to
//     the RTS again, proven against the store's audit records.
//
// Seeds are fixed so CI failures reproduce; each seed drives one full
// multi-incarnation scenario.

// chaosApp builds the scenario's application with deterministic structural
// UIDs, so every incarnation names each entity identically.
func chaosApp() []*Pipeline {
	var pipes []*Pipeline
	for pi := 0; pi < 2; pi++ {
		p := NewPipeline(fmt.Sprintf("chaos-p%d", pi))
		p.UID = fmt.Sprintf("pipeline.%03d", pi)
		for si := 0; si < 2; si++ {
			s := NewStage(fmt.Sprintf("s%d", si))
			s.UID = fmt.Sprintf("stage.%03d.%03d", pi, si)
			for ti := 0; ti < 6; ti++ {
				task := NewTask(fmt.Sprintf("t%02d", ti))
				task.UID = fmt.Sprintf("task.%03d.%03d.%05d", pi, si, ti)
				task.Executable = "sleep"
				task.Duration = 20 * time.Second
				s.AddTask(task) //nolint:errcheck
			}
			p.AddStage(s) //nolint:errcheck
		}
		pipes = append(pipes, p)
	}
	return pipes
}

const chaosTasks = 2 * 2 * 6

// reconstructDone rebuilds the DONE-task set from the journal directory the
// way Resume does: newest snapshot, then journal records above its
// watermark.
func reconstructDone(t *testing.T, dir string) map[string]bool {
	t.Helper()
	final := map[string]string{}
	snap, haveSnap, err := statedb.LoadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if haveSnap {
		for _, e := range snap.Entries {
			if e.Entity == "task" {
				final[e.UID] = e.State
			}
		}
	}
	err = journal.ReplayDir(dir, func(rec journal.Record) error {
		if rec.Type != "state" {
			return nil
		}
		if haveSnap && rec.Seq <= snap.Watermark {
			return nil
		}
		sr, derr := msgcodec.DecodeStateRec(rec.Data)
		if derr != nil {
			return derr
		}
		if sr.Entity == "task" {
			final[sr.UID] = sr.State
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := map[string]bool{}
	for uid, state := range final {
		if TaskState(state) == TaskDone {
			done[uid] = true
		}
	}
	return done
}

// auditPushes replays the RTS audit log and returns, for records with
// seq > afterSeq, the pushed task UIDs, plus the log's final seq.
func auditPushes(t *testing.T, dir string, afterSeq uint64) ([]string, uint64) {
	t.Helper()
	var uids []string
	var last uint64
	err := journal.Replay(filepath.Join(dir, "rts-audit.log"), func(rec journal.Record) error {
		last = rec.Seq
		if rec.Type != "rts.store" || rec.Seq <= afterSeq {
			return nil
		}
		sr, err := msgcodec.DecodeStoreRec(rec.Data)
		if err != nil {
			return err
		}
		if sr.Op == "push" {
			uids = append(uids, sr.UIDs...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return uids, last
}

func chaosConfig(dir string) AppConfig {
	return AppConfig{
		Resource:      Resource{Name: "supermic", Cores: 16, Walltime: time.Hour},
		TimeScale:     50 * time.Microsecond,
		HostName:      "null",
		JournalDir:    dir,
		SnapshotEvery: 8,
		SegmentBytes:  2048,
	}
}

// runIncarnation starts (or resumes) one incarnation and kills it after
// killAfter task events; killAfter <= 0 lets it run to completion. It
// returns whether the run completed.
func runIncarnation(t *testing.T, dir string, killAfter int) bool {
	t.Helper()
	am, err := NewAppManager(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := am.AddPipelines(chaosApp()...); err != nil {
		t.Fatal(err)
	}
	var sub *EventSub
	if killAfter > 0 {
		sub = am.Subscribe(EventFilter{Kinds: []EventKind{EventTask}})
		defer sub.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	run, err := am.Resume(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if sub != nil {
		go func() {
			seen := 0
			for range sub.C() {
				seen++
				if seen >= killAfter {
					run.Cancel("chaos kill")
					return
				}
			}
		}()
	}
	err = run.Wait()
	if err == nil {
		return true
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("incarnation failed with %v, want completion or chaos kill", err)
	}
	return false
}

func chaosScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	const maxIncarnations = 12
	var auditSeq uint64
	completed := false
	for inc := 0; inc < maxIncarnations && !completed; inc++ {
		// What the journal says is DONE before this incarnation: the
		// exactly-once baseline.
		doneBefore := reconstructDone(t, dir)

		// Kill somewhere in the remaining work's event stream; the final
		// allowed incarnation runs uninterrupted so the scenario terminates.
		killAfter := 1 + rng.Intn(3*chaosTasks)
		if inc == maxIncarnations-1 {
			killAfter = 0
		}
		completed = runIncarnation(t, dir, killAfter)

		// Exactly-once: nothing DONE before this incarnation was pushed to
		// the RTS during it.
		pushed, last := auditPushes(t, dir, auditSeq)
		auditSeq = last
		for _, uid := range pushed {
			if doneBefore[uid] {
				t.Fatalf("seed %d incarnation %d: task %s was DONE before the kill but was re-pushed",
					seed, inc, uid)
			}
		}
	}
	if !completed {
		t.Fatalf("seed %d: no incarnation completed within %d attempts", seed, maxIncarnations)
	}

	// Conservation: the directory alone reconstructs all tasks DONE.
	done := reconstructDone(t, dir)
	if len(done) != chaosTasks {
		t.Fatalf("seed %d: reconstructed %d DONE tasks, want %d", seed, len(done), chaosTasks)
	}
}

// TestChaosResume is the crash-recovery acceptance harness (fixed seeds;
// -short trims the sweep). Each seed kills a durable run at randomized
// points across incarnations and proves conservation and exactly-once
// semantics on every resume.
func TestChaosResume(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			chaosScenario(t, seed)
		})
	}
}

// TestDurabilityProgressSurface pins the public Progress.Durability surface
// through the entk façade.
func TestDurabilityProgressSurface(t *testing.T) {
	dir := t.TempDir()
	am, err := NewAppManager(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := am.AddPipelines(chaosApp()...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		t.Fatal(err)
	}
	d := am.Snapshot().Durability
	if d == nil {
		t.Fatal("Durability nil for a durable run")
	}
	if d.Snapshots == 0 || d.JournalSeq == 0 {
		t.Fatalf("durability counters did not advance: %+v", d)
	}

	// Non-durable runs must not grow the surface.
	am2, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "supermic", Cores: 8, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	if am2.Snapshot().Durability != nil {
		t.Fatal("Durability non-nil for a non-durable run")
	}
	am2.teardown()
}

// TestPackageLevelResume pins the entk.Resume convenience: build, register,
// resume in one call.
func TestPackageLevelResume(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	run, err := Resume(ctx, chaosConfig(dir), chaosApp()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(ctx, AppConfig{Resource: Resource{Name: "supermic", Cores: 8, Walltime: time.Hour}}); err == nil {
		t.Fatal("Resume without JournalDir accepted")
	}
}
