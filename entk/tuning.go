package entk

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/autotune"
	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/msgcodec"
	"repro/internal/rts"
	"repro/internal/tuning"
)

// CurrentTuningVersion is the Tuning schema this build understands. The
// version gates forward compatibility for persisted or generated configs: a
// Tuning carrying a newer version than the binary knows is rejected by
// Validate instead of being silently half-applied.
const CurrentTuningVersion = 1

// defaultBatchSize mirrors the core's EmgrBatch default; defaultMaxBatch is
// the autotune controller's default batch-growth ceiling.
const (
	defaultBatchSize = 1024
	defaultMaxBatch  = 8192
)

// maxSchedulersPerShard bounds the scheduler knob: more than 8 scheduler
// loops per store shard only adds steal contention, so Validate rejects it
// as a configuration error instead of silently running a thrashing pool.
const maxSchedulersPerShard = 8

// Tuning consolidates the per-run performance knobs. The zero value is
// valid and selects every documented default; AppConfig embeds a Tuning, so
// knobs are set either through it or (deprecated) through the aliases still
// present on AppConfig — when both are set, the alias wins, preserving the
// behavior of existing callers.
type Tuning struct {
	// Version is the schema version of this struct (0 or
	// CurrentTuningVersion today). Leave zero unless the value was
	// persisted by another build.
	Version int
	// BatchSize bounds the broker's batched hot path: how many tasks ride
	// in one pending-queue message and how many messages the Emgr pops per
	// broker round-trip. Default 1024; 1 restores the per-message path.
	BatchSize int
	// QueueShards is the number of independently locked ready rings behind
	// each task-traffic broker queue and the RTS task store. Default
	// min(GOMAXPROCS, 8); 1 restores the single-lock queues.
	QueueShards int
	// SchedulerWorkers is the RTS agent's scheduler concurrency. Default
	// min(GOMAXPROCS, store shards); 1 restores strict push-order FIFO
	// dispatch (see docs/api.md for the ordering contract above 1).
	SchedulerWorkers int
	// WireFormat selects the control-plane wire codec: "binary" (default)
	// or "json". Decoding accepts both regardless (docs/wire-format.md).
	WireFormat string
	// SnapshotEvery is the durable mode's snapshot cadence in committed
	// state records. Default 1024; negative disables snapshots (journal
	// only, no compaction). Ignored without a journal directory.
	SnapshotEvery int
	// Autotune configures the live knob controller (docs/autotune.md). Off
	// by default: the hot paths then read a collapsed-bounds knob handle
	// whose values never change — one atomic load, zero steering.
	Autotune Autotune
}

// Autotune is the Tuning policy block for the live knob controller: a
// per-run goroutine that samples the run's observability counters (queue
// depth, store depths, steal-vs-pull ratio, dispatch latency, event-ring
// drops, host strain) on a fixed virtual cadence and steers BatchSize and
// SchedulerWorkers between the bounds below while the run executes. Every
// decision is published as an EventKnob event and counted in
// Progress.KnobChanges.
type Autotune struct {
	// Enabled turns the controller on. Off by default.
	Enabled bool
	// Interval is the sampling cadence in virtual time (default 2s).
	Interval time.Duration
	// MinBatch and MaxBatch bound the batch-size knob (defaults 1 and
	// 8192). The bounds are widened to include the starting BatchSize.
	MinBatch int
	MaxBatch int
	// MinSchedulers and MaxSchedulers bound the scheduler-pool knob
	// (defaults 1 and the resolved SchedulerWorkers — i.e. no growth beyond
	// the configured pool unless MaxSchedulers raises the ceiling).
	MinSchedulers int
	MaxSchedulers int
}

// KnobError is the typed per-knob validation error: which knob, the
// offending value, and why no component can honor it.
type KnobError struct {
	Knob   string
	Value  int
	Reason string
}

// Error implements error.
func (e *KnobError) Error() string {
	return fmt.Sprintf("entk: tuning %s = %d: %s", e.Knob, e.Value, e.Reason)
}

// effectiveShards resolves the shard count Validate bounds the scheduler
// knob against: the configured QueueShards, or the broker default.
func (t Tuning) effectiveShards() int {
	if t.QueueShards > 0 {
		return t.QueueShards
	}
	return broker.DefaultShards()
}

// Validate checks the tuning for values no component can honor, reporting
// each as a *KnobError (wire-format and version mismatches keep their own
// error shapes). It does not mutate: zero means "use the default" for every
// knob, and defaults are applied by the components that own each knob.
func (t Tuning) Validate() error {
	if t.Version != 0 && t.Version != CurrentTuningVersion {
		return fmt.Errorf("entk: tuning version %d not supported (this build understands %d)",
			t.Version, CurrentTuningVersion)
	}
	if t.BatchSize < 0 {
		return &KnobError{Knob: "BatchSize", Value: t.BatchSize, Reason: "negative (0 selects the default, 1 the per-message path)"}
	}
	if t.QueueShards < 0 {
		return &KnobError{Knob: "QueueShards", Value: t.QueueShards, Reason: "negative (0 selects the default)"}
	}
	if t.SchedulerWorkers < 0 {
		return &KnobError{Knob: "SchedulerWorkers", Value: t.SchedulerWorkers, Reason: "negative (0 selects the default)"}
	}
	shards := t.effectiveShards()
	if limit := shards * maxSchedulersPerShard; t.SchedulerWorkers > limit {
		return &KnobError{Knob: "SchedulerWorkers", Value: t.SchedulerWorkers,
			Reason: fmt.Sprintf("exceeds %d (8 per store shard, %d shards)", limit, shards)}
	}
	if t.WireFormat != "" {
		if _, err := msgcodec.ParseFormat(t.WireFormat); err != nil {
			return fmt.Errorf("entk: tuning %w", err)
		}
	}
	return t.Autotune.validate(shards)
}

// validate checks the autotune policy block against the resolved shard
// count. Zero fields mean "default" and are always legal.
func (a Autotune) validate(shards int) error {
	if a.Interval < 0 {
		return &KnobError{Knob: "Autotune.Interval", Value: int(a.Interval), Reason: "negative"}
	}
	if a.MinBatch < 0 {
		return &KnobError{Knob: "Autotune.MinBatch", Value: a.MinBatch, Reason: "negative"}
	}
	if a.MaxBatch < 0 {
		return &KnobError{Knob: "Autotune.MaxBatch", Value: a.MaxBatch, Reason: "negative"}
	}
	if a.MinBatch > 0 && a.MaxBatch > 0 && a.MaxBatch < a.MinBatch {
		return &KnobError{Knob: "Autotune.MaxBatch", Value: a.MaxBatch,
			Reason: fmt.Sprintf("below Autotune.MinBatch %d", a.MinBatch)}
	}
	if a.MinSchedulers < 0 {
		return &KnobError{Knob: "Autotune.MinSchedulers", Value: a.MinSchedulers, Reason: "negative"}
	}
	if a.MaxSchedulers < 0 {
		return &KnobError{Knob: "Autotune.MaxSchedulers", Value: a.MaxSchedulers, Reason: "negative"}
	}
	if a.MinSchedulers > 0 && a.MaxSchedulers > 0 && a.MaxSchedulers < a.MinSchedulers {
		return &KnobError{Knob: "Autotune.MaxSchedulers", Value: a.MaxSchedulers,
			Reason: fmt.Sprintf("below Autotune.MinSchedulers %d", a.MinSchedulers)}
	}
	if limit := shards * maxSchedulersPerShard; a.MaxSchedulers > limit {
		return &KnobError{Knob: "Autotune.MaxSchedulers", Value: a.MaxSchedulers,
			Reason: fmt.Sprintf("exceeds %d (8 per store shard, %d shards)", limit, shards)}
	}
	return nil
}

// effectiveTuning resolves the run's tuning: the embedded Tuning overlaid
// by any set deprecated AppConfig alias, then validated.
func (cfg *AppConfig) effectiveTuning() (Tuning, error) {
	t := cfg.Tuning
	if cfg.BatchSize != 0 {
		t.BatchSize = cfg.BatchSize
	}
	if cfg.QueueShards != 0 {
		t.QueueShards = cfg.QueueShards
	}
	if cfg.SchedulerWorkers != 0 {
		t.SchedulerWorkers = cfg.SchedulerWorkers
	}
	if cfg.WireFormat != "" {
		t.WireFormat = cfg.WireFormat
	}
	if cfg.SnapshotEvery != 0 {
		t.SnapshotEvery = cfg.SnapshotEvery
	}
	if err := t.Validate(); err != nil {
		return Tuning{}, err
	}
	return t, nil
}

// resolvedTuning is the single source of truth for the run's knobs: the
// validated Tuning with every default applied to a concrete value, plus the
// one live handle shared by the EnTK core and the RTS it builds. Both
// core.Config and rts.Config are populated from here (applyCore/applyRTS),
// so the knob-resolution logic exists exactly once.
type resolvedTuning struct {
	tun    Tuning
	batch  int
	shards int
	scheds int
	live   *tuning.Live
	policy autotune.Policy
}

// resolveTuning overlays the deprecated aliases, validates, applies the
// documented defaults and builds the live knob handle — collapsed bounds
// when autotune is off, the policy's bounds when on.
func (cfg *AppConfig) resolveTuning() (*resolvedTuning, error) {
	t, err := cfg.effectiveTuning()
	if err != nil {
		return nil, err
	}
	rt := &resolvedTuning{tun: t, batch: t.BatchSize, shards: t.QueueShards, scheds: t.SchedulerWorkers}
	if rt.batch == 0 {
		rt.batch = defaultBatchSize
	}
	if rt.shards == 0 {
		rt.shards = broker.DefaultShards()
	}
	if rt.scheds == 0 {
		rt.scheds = runtime.GOMAXPROCS(0)
		if rt.scheds > rt.shards {
			rt.scheds = rt.shards
		}
		if rt.scheds < 1 {
			rt.scheds = 1
		}
	}
	a := t.Autotune
	if !a.Enabled {
		rt.live = tuning.Fixed(rt.batch, rt.scheds)
		return rt, nil
	}
	minB, maxB := a.MinBatch, a.MaxBatch
	if minB == 0 {
		minB = 1
	}
	if maxB == 0 {
		maxB = defaultMaxBatch
	}
	// The bounds always include the starting point, so enabling autotune
	// never moves a knob before the controller's first decision.
	if minB > rt.batch {
		minB = rt.batch
	}
	if maxB < rt.batch {
		maxB = rt.batch
	}
	minS, maxS := a.MinSchedulers, a.MaxSchedulers
	if minS == 0 {
		minS = 1
	}
	if maxS == 0 {
		maxS = rt.scheds
	}
	if minS > rt.scheds {
		minS = rt.scheds
	}
	if maxS < rt.scheds {
		maxS = rt.scheds
	}
	rt.live = tuning.NewBounded(rt.batch, minB, maxB, rt.scheds, minS, maxS)
	rt.policy = autotune.Policy{Enabled: true, Interval: a.Interval}
	return rt, nil
}

// applyCore fills core.Config's knob fields from the resolved tuning.
func (rt *resolvedTuning) applyCore(c *core.Config) {
	c.SnapshotEvery = rt.tun.SnapshotEvery
	c.EmgrBatch = rt.batch
	c.QueueShards = rt.shards
	c.SchedulerWorkers = rt.scheds
	c.WireFormat = rt.tun.WireFormat
	c.Live = rt.live
	c.Autotune = rt.policy
}

// applyRTS fills rts.Config's knob fields from the resolved tuning. The
// live handle is the same one the core reads: a controller decision steers
// the broker batch path and the scheduler pool together.
func (rt *resolvedTuning) applyRTS(c *rts.Config) {
	c.QueueShards = rt.shards
	c.Schedulers = rt.scheds
	c.Live = rt.live
}
