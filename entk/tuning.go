package entk

import (
	"fmt"

	"repro/internal/msgcodec"
)

// CurrentTuningVersion is the Tuning schema this build understands. The
// version gates forward compatibility for persisted or generated configs: a
// Tuning carrying a newer version than the binary knows is rejected by
// Validate instead of being silently half-applied.
const CurrentTuningVersion = 1

// Tuning consolidates the per-run performance knobs. The zero value is
// valid and selects every documented default; AppConfig embeds a Tuning, so
// knobs are set either through it or (deprecated) through the aliases still
// present on AppConfig — when both are set, the alias wins, preserving the
// behavior of existing callers.
type Tuning struct {
	// Version is the schema version of this struct (0 or
	// CurrentTuningVersion today). Leave zero unless the value was
	// persisted by another build.
	Version int
	// BatchSize bounds the broker's batched hot path: how many tasks ride
	// in one pending-queue message and how many messages the Emgr pops per
	// broker round-trip. Default 1024; 1 restores the per-message path.
	BatchSize int
	// QueueShards is the number of independently locked ready rings behind
	// each task-traffic broker queue and the RTS task store. Default
	// min(GOMAXPROCS, 8); 1 restores the single-lock queues.
	QueueShards int
	// SchedulerWorkers is the RTS agent's scheduler concurrency. Default
	// min(GOMAXPROCS, store shards); 1 restores strict push-order FIFO
	// dispatch (see docs/api.md for the ordering contract above 1).
	SchedulerWorkers int
	// WireFormat selects the control-plane wire codec: "binary" (default)
	// or "json". Decoding accepts both regardless (docs/wire-format.md).
	WireFormat string
	// SnapshotEvery is the durable mode's snapshot cadence in committed
	// state records. Default 1024; negative disables snapshots (journal
	// only, no compaction). Ignored without a journal directory.
	SnapshotEvery int
}

// Validate checks the tuning for values no component can honor. It does not
// mutate: defaults are applied by the components that own each knob.
func (t Tuning) Validate() error {
	if t.Version != 0 && t.Version != CurrentTuningVersion {
		return fmt.Errorf("entk: tuning version %d not supported (this build understands %d)",
			t.Version, CurrentTuningVersion)
	}
	if t.BatchSize < 0 {
		return fmt.Errorf("entk: tuning BatchSize %d is negative", t.BatchSize)
	}
	if t.QueueShards < 0 {
		return fmt.Errorf("entk: tuning QueueShards %d is negative", t.QueueShards)
	}
	if t.SchedulerWorkers < 0 {
		return fmt.Errorf("entk: tuning SchedulerWorkers %d is negative", t.SchedulerWorkers)
	}
	if t.WireFormat != "" {
		if _, err := msgcodec.ParseFormat(t.WireFormat); err != nil {
			return fmt.Errorf("entk: tuning %w", err)
		}
	}
	return nil
}

// effectiveTuning resolves the run's tuning: the embedded Tuning overlaid
// by any set deprecated AppConfig alias, then validated.
func (cfg *AppConfig) effectiveTuning() (Tuning, error) {
	t := cfg.Tuning
	if cfg.BatchSize != 0 {
		t.BatchSize = cfg.BatchSize
	}
	if cfg.QueueShards != 0 {
		t.QueueShards = cfg.QueueShards
	}
	if cfg.SchedulerWorkers != 0 {
		t.SchedulerWorkers = cfg.SchedulerWorkers
	}
	if cfg.WireFormat != "" {
		t.WireFormat = cfg.WireFormat
	}
	if cfg.SnapshotEvery != 0 {
		t.SnapshotEvery = cfg.SnapshotEvery
	}
	if err := t.Validate(); err != nil {
		return Tuning{}, err
	}
	return t, nil
}
