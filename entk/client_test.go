package entk_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/entk"
	"repro/internal/daemon"
	"repro/internal/rts"
)

// startDaemon brings up an entkd instance serving a unix socket in a temp
// directory and returns a dialed client.
func startDaemon(t *testing.T, mutate func(*daemon.Config)) (*daemon.Daemon, *entk.Client) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "entkd.sock")
	cfg := daemon.Config{
		SocketPath:     sock,
		Resource:       "supermic",
		Cores:          16,
		Walltime:       72 * time.Hour,
		TimeScale:      time.Microsecond,
		Model:          rts.FastModel(),
		ReconcileEvery: 10 * time.Millisecond,
		Seed:           11,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := d.Serve()
	if err != nil {
		d.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		d.Stop()
	})
	client, err := entk.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	return d, client
}

// clientApp builds an appjson document sized for the daemon's shared pilot.
func clientApp(cores, nTasks, durMS int) []byte {
	return []byte(fmt.Sprintf(
		`{"resource":{"name":"supermic","cores":%d,"walltime_s":3600},"pipelines":[{"name":"p","stages":[{"name":"s0","tasks":[{"name":"t","executable":"sleep","duration_s":%g,"cores":1,"copies":%d}]}]}]}`,
		cores, float64(durMS)/1000, nTasks))
}

// Four concurrent runs submitted over the socket share one broker and one
// pilot pool end to end: all reach DONE, the daemon's ledger drains to zero
// and no lease leaks.
func TestClientHostsFourConcurrentRuns(t *testing.T) {
	d, client := startDaemon(t, nil)
	ctx := context.Background()
	const runs = 4
	refs := make([]*entk.RunRef, runs)
	for i := range refs {
		ref, err := client.Submit(ctx, clientApp(4, 10, 5), entk.SubmitOptions{
			Tenant: fmt.Sprintf("tenant%d", i),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		refs[i] = ref
	}
	// All four must be tracked before any finishes is not guaranteed (fast
	// virtual tasks), but the daemon must have admitted all four.
	infos, err := client.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != runs {
		t.Fatalf("List: %d runs, want %d", len(infos), runs)
	}
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref *entk.RunRef) {
			defer wg.Done()
			errs[i] = ref.Wait(ctx)
		}(i, ref)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for _, ref := range refs {
		info, err := ref.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != daemon.StateDone {
			t.Fatalf("run %s: state %s, want DONE", ref.ID, info.State)
		}
	}
	if leaked := d.LeakedLeases(); leaked != 0 {
		t.Fatalf("leaked leases: %d", leaked)
	}
	if claimed := d.PoolClaimed(); claimed != 0 {
		t.Fatalf("claimed cores after all runs: %d", claimed)
	}
}

// The event stream delivers a run's task completions over its dedicated
// connection and closes cleanly when the run finishes.
func TestClientEventStream(t *testing.T) {
	_, client := startDaemon(t, nil)
	ctx := context.Background()
	// Tasks run long in virtual time (~50ms wall each at this timescale) so
	// the subscription lands before the first completion.
	const tasks = 8
	ref, err := client.Submit(ctx, clientApp(4, tasks, 50_000_000), entk.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events, stop, err := ref.Events(ctx, entk.EventTask)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if err := ref.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	done := 0
	for ev := range events {
		if ev.Kind != entk.EventTask {
			t.Fatalf("filtered stream delivered %s event", ev.Kind)
		}
		if ev.To == "DONE" {
			done++
		}
	}
	if done != tasks {
		t.Fatalf("saw %d task completions, want %d", done, tasks)
	}
}

// Typed admission errors survive the socket round trip.
func TestClientAdmissionErrors(t *testing.T) {
	_, client := startDaemon(t, func(cfg *daemon.Config) {
		cfg.Cores = 4
		cfg.AdmissionQueueLen = -1 // reject instead of queueing
	})
	ctx := context.Background()
	if _, err := client.Submit(ctx, clientApp(8, 1, 1), entk.SubmitOptions{}); !errors.Is(err, entk.ErrAdmissionRejected) {
		t.Fatalf("oversized claim over socket: want ErrAdmissionRejected, got %v", err)
	}
	// Saturate, then the next submission must reject (queueing disabled).
	hog, err := client.Submit(ctx, clientApp(4, 32, 2_000_000), entk.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, clientApp(2, 1, 1), entk.SubmitOptions{}); !errors.Is(err, entk.ErrAdmissionRejected) {
		t.Fatalf("saturated submit: want ErrAdmissionRejected, got %v", err)
	}
	if err := hog.Cancel(ctx, "test over"); err != nil {
		t.Fatal(err)
	}
}

// Control operations (pause/resume/cancel) work through the socket and act
// on the addressed run only.
func TestClientControlOps(t *testing.T) {
	_, client := startDaemon(t, nil)
	ctx := context.Background()
	long, err := client.Submit(ctx, clientApp(4, 64, 2_000_000), entk.SubmitOptions{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	short, err := client.Submit(ctx, clientApp(4, 8, 5), entk.SubmitOptions{Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if err := short.Wait(ctx); err != nil {
		t.Fatalf("sibling run: %v", err)
	}
	if err := long.Cancel(ctx, "done testing"); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := long.Wait(waitCtx); err == nil {
		t.Fatal("canceled run reported success")
	}
	info, err := client.Attach(long.ID).Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != daemon.StateCanceled {
		t.Fatalf("state %s, want CANCELED", info.State)
	}
}
