package entk

import (
	"context"
	"errors"
	"testing"
	"time"
)

func startSmallApp(t *testing.T, tasks int, dur time.Duration) (*AppManager, *Pipeline, *Run) {
	t.Helper()
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "supermic", Cores: 8, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := smallApp(tasks, dur)
	if err := am.AddPipelines(pipe); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	run, err := am.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return am, pipe, run
}

func TestStartWaitHandle(t *testing.T) {
	am, pipe, run := startSmallApp(t, 6, 10*time.Second)
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if pipe.State() != PipelineDone {
		t.Fatalf("pipeline state = %s", pipe.State())
	}
	snap := run.Snapshot()
	if snap.TasksDone != 6 || snap.TasksTotal != 6 {
		t.Fatalf("snapshot %+v", snap)
	}
	// Second start is rejected with the sentinel; teardown stays idempotent
	// (Wait again, Run again — no panic, no double close).
	if _, err := am.Start(context.Background()); !errors.Is(err, ErrAlreadyRan) {
		t.Fatalf("second Start: %v", err)
	}
	if err := am.Run(context.Background()); !errors.Is(err, ErrAlreadyRan) {
		t.Fatalf("Run after Start: %v", err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRunHandleEventStreamAndUtilization(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "supermic", Cores: 4, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := smallApp(8, 20*time.Second) // 8 tasks on 4 cores: two waves
	if err := am.AddPipelines(pipe); err != nil {
		t.Fatal(err)
	}
	sub := am.Subscribe(EventFilter{Kinds: []EventKind{EventTask}})
	run, err := am.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	sawBusy := false
	done := make(chan int)
	go func() {
		finals := 0
		for ev := range sub.C() {
			if ev.To == string(TaskDone) {
				finals++
			}
			if u := run.Snapshot().Utilization; u.CoresBusy > 0 {
				sawBusy = true
			}
		}
		done <- finals
	}()
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if finals := <-done; finals != 8 {
		t.Fatalf("saw %d DONE task events, want 8", finals)
	}
	if !sawBusy {
		t.Fatal("snapshot never reported busy pilot cores during execution")
	}
	u := run.Snapshot().Utilization
	if u.CoresTotal != 4 || u.CoresBusy != 0 {
		t.Fatalf("post-run utilization %+v", u)
	}
}

func TestCancelPipelinePublicAPI(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "comet", Cores: 8, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	stuck := smallApp(2, 2*time.Hour) // ~360ms of wall time if left alone
	quick := smallApp(2, 10*time.Second)
	if err := am.AddPipelines(stuck, quick); err != nil {
		t.Fatal(err)
	}
	run, err := am.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := run.CancelPipeline(stuck.UID); err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatalf("run errored after pipeline cancel: %v", err)
	}
	if stuck.State() != PipelineCanceled {
		t.Fatalf("canceled pipeline state = %s", stuck.State())
	}
	if quick.State() != PipelineDone {
		t.Fatalf("sibling state = %s", quick.State())
	}
}

func TestPauseResumePublicAPI(t *testing.T) {
	am, err := NewAppManager(AppConfig{
		Resource:  Resource{Name: "comet", Cores: 4, Walltime: time.Hour},
		TimeScale: 50 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline("two-stage")
	for i := 0; i < 2; i++ {
		s := NewStage("s")
		task := NewTask("t")
		task.Executable = "sleep"
		task.Duration = 5 * time.Second
		if err := s.AddTask(task); err != nil {
			t.Fatal(err)
		}
		if err := pipe.AddStage(s); err != nil {
			t.Fatal(err)
		}
	}
	runCh := make(chan *Run, 1)
	paused := make(chan error, 1)
	pipe.Stages()[0].PostExec = func() error {
		r := <-runCh
		runCh <- r
		paused <- r.Pause(pipe.UID)
		return nil
	}
	if err := am.AddPipelines(pipe); err != nil {
		t.Fatal(err)
	}
	run, err := am.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	runCh <- run
	if err := <-paused; err != nil {
		t.Fatalf("pause: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	if st := pipe.Stages()[1].State(); st != StageInitial {
		t.Fatalf("second stage advanced while paused: %s", st)
	}
	if err := run.Resume(pipe.UID); err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if pipe.State() != PipelineDone {
		t.Fatalf("pipeline state = %s", pipe.State())
	}
}
