// Package entk is the public API of this Go reproduction of the Ensemble
// Toolkit (EnTK) from "Harnessing the Power of Many: Extensible Toolkit for
// Scalable Ensemble Applications" (Balasubramanian et al., IPDPS 2018).
//
// Applications are described with the paper's PST model — Pipelines of
// Stages of Tasks — and handed to an AppManager for execution on a
// (simulated) computing infrastructure through a pluggable runtime system:
//
//	p := entk.NewPipeline("md")
//	s := entk.NewStage("sim")
//	for i := 0; i < 16; i++ {
//		t := entk.NewTask("replica")
//		t.Executable = "mdrun"
//		t.Duration = 600 * time.Second
//		s.AddTask(t)
//	}
//	p.AddStage(s)
//
//	am, _ := entk.NewAppManager(entk.AppConfig{Resource: entk.Resource{
//		Name: "titan", Cores: 512, Walltime: 2 * time.Hour,
//	}})
//	am.AddPipelines(p)
//	err := am.Run(context.Background())
//
// All pipelines execute concurrently; stages within a pipeline execute
// sequentially; tasks within a stage execute concurrently. Stage.PostExec
// hooks support adaptive workflows that extend themselves at runtime.
package entk

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/hostmodel"
	"repro/internal/hpc"
	"repro/internal/profiler"
	"repro/internal/rts"
	"repro/internal/saga"
	"repro/internal/statedb"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Re-exported PST entities. The types are shared with the internal engine,
// so values constructed here flow through the whole stack unchanged.
type (
	// Task is an abstraction of a computational task: executable, software
	// environment and data dependences.
	Task = core.Task
	// Stage is a set of tasks that can execute concurrently.
	Stage = core.Stage
	// Pipeline is a list of stages that execute sequentially.
	Pipeline = core.Pipeline
	// StagingDirective describes one input or output data movement.
	StagingDirective = core.StagingDirective
	// CPUReqs describes a task's CPU needs.
	CPUReqs = core.CPUReqs
	// GPUReqs describes a task's GPU needs.
	GPUReqs = core.GPUReqs
	// StateStore is the external-database hook for transactional state
	// updates (paper §II-B4).
	StateStore = core.StateStore
	// TaskState, StageState and PipelineState are entity lifecycle states.
	TaskState = core.TaskState
	// StageState is a stage's lifecycle state.
	StageState = core.StageState
	// PipelineState is a pipeline's lifecycle state.
	PipelineState = core.PipelineState
)

// Re-exported state constants (the commonly inspected ones).
const (
	TaskDone     = core.TaskDone
	TaskFailed   = core.TaskFailed
	TaskCanceled = core.TaskCanceled
	StageDone    = core.StageDone
	PipelineDone = core.PipelineDone
)

// Staging actions.
const (
	StagingCopy     = core.StagingCopy
	StagingLink     = core.StagingLink
	StagingMove     = core.StagingMove
	StagingTransfer = core.StagingTransfer
)

// NewTask returns a fresh task; set Executable, Duration, CPUReqs and
// staging directives before adding it to a stage.
func NewTask(name string) *Task { return core.NewTask(name) }

// NewStage returns a fresh stage.
func NewStage(name string) *Stage { return core.NewStage(name) }

// NewPipeline returns a fresh pipeline.
func NewPipeline(name string) *Pipeline { return core.NewPipeline(name) }

// StateDB is the bundled external state database (the stack's MongoDB
// stand-in). It satisfies StateStore and additionally exposes the full
// commit history for live or postmortem analysis.
type StateDB = statedb.DB

// NewStateDB returns an empty external state database for
// AppConfig.StateStore.
func NewStateDB() *StateDB { return statedb.New() }

// Resource describes the acquisition request for a computing
// infrastructure: which CI, how many cores, for how long.
type Resource struct {
	// Name is a catalogued CI: "supermic", "stampede", "comet", "titan".
	Name string
	// Cores is the pilot size.
	Cores int
	// GPUs is the pilot's GPU allocation; when 0 it defaults to one GPU
	// per allocated node on GPU-equipped CIs (Titan). The agent schedules
	// GPU tasks against it exactly as it schedules cores.
	GPUs int
	// Walltime of the pilot job.
	Walltime time.Duration
	// Queue and Project pass through to the batch system.
	Queue   string
	Project string
}

// AppConfig configures an AppManager.
type AppConfig struct {
	// Resource is the CI request. Required.
	Resource Resource
	// TimeScale is the wall cost of one virtual second (default 1 ms).
	TimeScale time.Duration
	// TaskRetries is the automatic resubmission budget per failed task.
	TaskRetries int
	// BatchSize tunes the broker's batched hot path through the workflow
	// layers: it bounds how many tasks ride in one pending-queue message
	// when Enqueue batch-publishes a stage, and how many messages the Emgr
	// pops per broker round-trip. Default 1024. Lower values trade broker
	// amortization for finer-grained submission (e.g. to interleave
	// pipelines on a small pilot); 1 effectively restores the per-message
	// path.
	BatchSize int
	// QueueShards is the number of independently locked ready rings behind
	// each task-traffic broker queue and the RTS task store — the
	// multi-consumer scaling knob. 0 selects the broker default,
	// min(GOMAXPROCS, 8); 1 restores the single-lock queues.
	QueueShards int
	// RTSRestarts bounds RTS restarts after runtime-system failures.
	RTSRestarts int
	// JournalPath enables transactional state journaling and recovery.
	JournalPath string
	// StateStore mirrors every state transition to an external database
	// (paper §II-B4); see NewStateDB for the bundled implementation. A
	// restarted application reacquires completed-task states from it.
	StateStore StateStore
	// Compute enables real kernel computation inside task executables.
	Compute bool
	// Seed drives all stochastic models (failure sampling).
	Seed int64
	// HostName selects the host model running EnTK ("xsede-vm",
	// "titan-login", "null"). Default: chosen from the resource per the
	// paper's setup.
	HostName string
	// Kernels are extra workload kernels to register (use-case packages
	// contribute Specfem and CAnalogs this way).
	Kernels []workload.Kernel
	// FSSpec overrides the shared-filesystem model (default: OLCF Lustre
	// on titan, generic XSEDE elsewhere).
	FSSpec *fsim.Spec
	// QueueWait, when positive, makes the pilot wait in the batch queue.
	QueueWait time.Duration
	// ExtraResources requests additional pilots on other CIs. When
	// present, tasks are mapped dynamically across all pilots — pin a task
	// with Tags["resource"] = CI name, or leave it untagged for
	// least-loaded placement. This is the paper's future-work capability
	// (i), "dynamic mapping of tasks onto heterogeneous resources", and
	// serves the seismic use case's need to interleave leadership-scale
	// simulation with cluster-scale analysis (§III-A).
	ExtraResources []Resource
}

// AppManager drives one ensemble application: it owns the simulated CI, the
// SAGA session, the pilot RTS and the EnTK core, wired exactly as in the
// paper's architecture diagram.
type AppManager struct {
	inner    *core.AppManager
	clock    vclock.Clock
	session  *saga.Session
	cluster  *hpc.Cluster
	clusters []*hpc.Cluster // extra CIs for heterogeneous execution
	fs       *fsim.FS
}

// NewAppManager assembles the full stack for cfg.
func NewAppManager(cfg AppConfig) (*AppManager, error) {
	if cfg.Resource.Name == "" {
		return nil, errors.New("entk: resource name required")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = time.Millisecond
	}
	clock := vclock.NewScaled(cfg.TimeScale)

	spec, err := hpc.LookupSpec(cfg.Resource.Name)
	if err != nil {
		return nil, err
	}
	spec.BaseQueueWait = cfg.QueueWait
	// Default the pilot's GPU allocation from the CI's per-node inventory:
	// a Titan pilot brings one GPU per allocated node (the seismic use
	// case's forward solver runs on those GPUs).
	if cfg.Resource.GPUs == 0 && spec.GPUsPerNode > 0 {
		nodes := (cfg.Resource.Cores + spec.CoresPerNode - 1) / spec.CoresPerNode
		cfg.Resource.GPUs = nodes * spec.GPUsPerNode
	}
	cluster, err := hpc.NewCluster(spec, clock)
	if err != nil {
		return nil, err
	}
	session := saga.NewSession()
	if err := session.Register(saga.NewClusterAdapter(cluster)); err != nil {
		cluster.Close()
		return nil, err
	}
	// Data management (§II-D): transfer staging directives are enacted over
	// per-protocol adapters (cp, scp, gsiscp, sftp, gsisftp, globus).
	transfers, err := saga.NewTransferService(clock)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	session.SetTransferService(transfers)
	// Additional CIs for heterogeneous execution.
	extraClusters := make([]*hpc.Cluster, 0, len(cfg.ExtraResources))
	closeAll := func() {
		cluster.Close()
		for _, c := range extraClusters {
			c.Close()
		}
	}
	for i, res := range cfg.ExtraResources {
		xspec, err := hpc.LookupSpec(res.Name)
		if err != nil {
			closeAll()
			return nil, err
		}
		xspec.BaseQueueWait = cfg.QueueWait
		if res.GPUs == 0 && xspec.GPUsPerNode > 0 {
			nodes := (res.Cores + xspec.CoresPerNode - 1) / xspec.CoresPerNode
			cfg.ExtraResources[i].GPUs = nodes * xspec.GPUsPerNode
		}
		xc, err := hpc.NewCluster(xspec, clock)
		if err != nil {
			closeAll()
			return nil, err
		}
		extraClusters = append(extraClusters, xc)
		if err := session.Register(saga.NewClusterAdapter(xc)); err != nil {
			closeAll()
			return nil, err
		}
	}

	fsSpec := fsim.XSEDEShared()
	if cfg.Resource.Name == "titan" {
		fsSpec = fsim.OLCFLustre()
	}
	if cfg.FSSpec != nil {
		fsSpec = *cfg.FSSpec
	}
	fs, err := fsim.New(fsSpec, clock, cfg.Seed)
	if err != nil {
		closeAll()
		return nil, err
	}

	hostName := cfg.HostName
	var host *hostmodel.Model
	if hostName == "" {
		host = hostmodel.ForCI(cfg.Resource.Name)
	} else {
		host, err = hostmodel.Lookup(hostName)
		if err != nil {
			closeAll()
			return nil, err
		}
	}

	registry := workload.NewRegistry()
	for _, k := range cfg.Kernels {
		if err := registry.Register(k); err != nil {
			closeAll()
			return nil, err
		}
	}

	am, err := core.NewAppManager(core.Config{
		Clock:       clock,
		Host:        host,
		JournalPath: cfg.JournalPath,
		StateStore:  cfg.StateStore,
		TaskRetries: cfg.TaskRetries,
		RTSRestarts: cfg.RTSRestarts,
		EmgrBatch:   cfg.BatchSize,
		QueueShards: cfg.QueueShards,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	am.SetResource(core.ResourceDesc{
		Resource: cfg.Resource.Name,
		Cores:    cfg.Resource.Cores,
		GPUs:     cfg.Resource.GPUs,
		Walltime: cfg.Resource.Walltime,
		Queue:    cfg.Resource.Queue,
		Project:  cfg.Resource.Project,
	})
	baseRTS := rts.Config{
		Clock:       clock,
		Session:     session,
		Registry:    registry,
		FS:          fs,
		Prof:        am.Profiler(),
		Compute:     cfg.Compute,
		Seed:        cfg.Seed,
		QueueShards: cfg.QueueShards,
	}
	if len(cfg.ExtraResources) == 0 {
		am.SetRTSFactory(rts.Factory(baseRTS))
	} else {
		// Heterogeneous execution: one pilot per resource behind a routing
		// RTS, all replaceable as one black box on failure.
		resources := append([]Resource{cfg.Resource}, cfg.ExtraResources...)
		am.SetRTSFactory(func(core.ResourceDesc) (core.RTS, error) {
			members := make([]rts.RouterMember, 0, len(resources))
			for _, res := range resources {
				child := baseRTS
				child.Resource = core.ResourceDesc{
					Resource: res.Name,
					Cores:    res.Cores,
					GPUs:     res.GPUs,
					Walltime: res.Walltime,
					Queue:    res.Queue,
					Project:  res.Project,
				}
				p, err := rts.New(child)
				if err != nil {
					return nil, err
				}
				members = append(members, rts.RouterMember{
					Name:     res.Name,
					RTS:      p,
					Resource: res.Name,
					Capacity: res.Cores,
					GPUs:     res.GPUs,
				})
			}
			return rts.NewRouter(members)
		})
	}

	return &AppManager{
		inner:    am,
		clock:    clock,
		session:  session,
		cluster:  cluster,
		clusters: extraClusters,
		fs:       fs,
	}, nil
}

// AddPipelines registers pipelines for execution. Called before Run it
// records them; called during execution (typically from a Stage.PostExec
// hook) it validates and schedules them immediately — adaptive workflows
// can fan out whole new pipelines at runtime, not just stages.
func (a *AppManager) AddPipelines(ps ...*Pipeline) error {
	return a.inner.AddPipelines(ps...)
}

// AddPipelineGroups registers an application expressed as a list of sets of
// pipelines — the paper's extended PST description (§II-B1). Pipelines in a
// group run concurrently; each group starts only after the previous group
// finished. Arbitrary DAGs can be declared directly with Pipeline.After.
func (a *AppManager) AddPipelineGroups(groups ...[]*Pipeline) error {
	return a.inner.AddPipelineGroups(groups...)
}

// Run executes the application to completion.
func (a *AppManager) Run(ctx context.Context) error {
	defer a.cluster.Close()
	defer a.session.Close()
	defer func() {
		for _, c := range a.clusters {
			c.Close()
		}
	}()
	return a.inner.Run(ctx)
}

// Report returns the paper-style overhead decomposition of the run.
func (a *AppManager) Report() profiler.Report {
	return a.inner.Profiler().Report()
}

// Clock exposes the application's virtual clock.
func (a *AppManager) Clock() vclock.Clock { return a.clock }

// Filesystem exposes the shared-filesystem model (statistics).
func (a *AppManager) Filesystem() *fsim.FS { return a.fs }

// Core exposes the underlying engine for advanced use (experiments,
// adaptive nudging).
func (a *AppManager) Core() *core.AppManager { return a.inner }

// Nudge wakes the scheduler after out-of-band workflow mutation.
func (a *AppManager) Nudge() { a.inner.Nudge() }

// CIs lists the catalogued computing infrastructures.
func CIs() []string { return hpc.Names() }
