// Package entk is the public API of this Go reproduction of the Ensemble
// Toolkit (EnTK) from "Harnessing the Power of Many: Extensible Toolkit for
// Scalable Ensemble Applications" (Balasubramanian et al., IPDPS 2018).
//
// Applications are described with the paper's PST model — Pipelines of
// Stages of Tasks — and handed to an AppManager for execution on a
// (simulated) computing infrastructure through a pluggable runtime system:
//
//	p := entk.NewPipeline("md")
//	s := entk.NewStage("sim")
//	for i := 0; i < 16; i++ {
//		t := entk.NewTask("replica")
//		t.Executable = "mdrun"
//		t.Duration = 600 * time.Second
//		s.AddTask(t)
//	}
//	p.AddStage(s)
//
//	am, _ := entk.NewAppManager(entk.AppConfig{Resource: entk.Resource{
//		Name: "titan", Cores: 512, Walltime: 2 * time.Hour,
//	}})
//	am.AddPipelines(p)
//
//	run, err := am.Start(context.Background())
//	if err != nil {
//		log.Fatal(err)
//	}
//	events, cancel := run.Events(entk.EventFilter{
//		Kinds: []entk.EventKind{entk.EventStage, entk.EventPipeline},
//	})
//	go func() {
//		for ev := range events {
//			log.Printf("%s %s: %s -> %s", ev.Kind, ev.Name, ev.From, ev.To)
//		}
//	}()
//	err = run.Wait()
//	cancel()
//
// Start returns a run handle that exposes the live execution: Wait blocks
// to completion, Snapshot reports per-entity progress and pilot
// utilization, Events streams typed state transitions, Pause/Resume gate
// individual pipelines, and Cancel/CancelPipeline abort the run or one
// pipeline. Run(ctx) remains as a blocking Start+Wait convenience. An
// AppManager is single-shot: a second Start or Run returns ErrAlreadyRan.
//
// All pipelines execute concurrently; stages within a pipeline execute
// sequentially; tasks within a stage execute concurrently. Stage.PostExec
// hooks support adaptive workflows that extend themselves at runtime.
package entk

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/hostmodel"
	"repro/internal/hpc"
	"repro/internal/profiler"
	"repro/internal/remoterts"
	"repro/internal/rts"
	"repro/internal/saga"
	"repro/internal/statedb"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Re-exported PST entities. The types are shared with the internal engine,
// so values constructed here flow through the whole stack unchanged.
type (
	// Task is an abstraction of a computational task: executable, software
	// environment and data dependences.
	Task = core.Task
	// Stage is a set of tasks that can execute concurrently.
	Stage = core.Stage
	// Pipeline is a list of stages that execute sequentially.
	Pipeline = core.Pipeline
	// StagingDirective describes one input or output data movement.
	StagingDirective = core.StagingDirective
	// CPUReqs describes a task's CPU needs.
	CPUReqs = core.CPUReqs
	// GPUReqs describes a task's GPU needs.
	GPUReqs = core.GPUReqs
	// StateStore is the external-database hook for transactional state
	// updates (paper §II-B4).
	StateStore = core.StateStore
	// TaskState, StageState and PipelineState are entity lifecycle states.
	TaskState = core.TaskState
	// StageState is a stage's lifecycle state.
	StageState = core.StageState
	// PipelineState is a pipeline's lifecycle state.
	PipelineState = core.PipelineState
	// Event is one committed lifecycle transition, streamed by Run.Events.
	Event = core.Event
	// EventKind classifies events by entity (task, stage, pipeline).
	EventKind = core.EventKind
	// EventFilter selects which events a subscription receives and sizes
	// its bounded buffer (see the core type for the backpressure contract).
	EventFilter = core.EventFilter
	// EventSub is a live subscription handle with a Dropped counter.
	EventSub = core.EventSub
	// Progress is the point-in-time run view returned by Run.Snapshot.
	Progress = core.Progress
	// PipelineProgress is one pipeline's slice of a Progress snapshot.
	PipelineProgress = core.PipelineProgress
	// Utilization reports pilot occupancy inside a Progress snapshot.
	Utilization = core.Utilization
	// StoreStats reports the RTS task store's shard/scheduler counters
	// inside a Progress snapshot.
	StoreStats = core.StoreStats
	// EventPeerStats describes one remote event subscriber (per-peer
	// Sent/Dropped accounting; see Progress.EventPeers and the entk-run
	// -events-listen flag).
	EventPeerStats = core.EventPeerStats
	// CancelError is the error a run finishes with after Run.Cancel.
	CancelError = core.CancelError
	// DurabilityStats reports the crash-recovery subsystem inside a
	// Progress snapshot (nil for non-durable runs).
	DurabilityStats = core.DurabilityStats
	// RecoveryInfo summarizes what a resumed run reconstructed at startup.
	RecoveryInfo = core.RecoveryInfo
)

// Event kinds.
const (
	EventTask     = core.EventTask
	EventStage    = core.EventStage
	EventPipeline = core.EventPipeline
	// EventKnob is an autotune controller decision (Name names the knob,
	// From/To its values as decimal strings, UID the rule that fired).
	EventKnob = core.EventKnob
)

// ErrAlreadyRan is returned by Start (and Run) when the AppManager has
// already executed; AppManagers are single-shot.
var ErrAlreadyRan = core.ErrAlreadyRan

// Re-exported state constants (the commonly inspected ones).
const (
	TaskDone          = core.TaskDone
	TaskFailed        = core.TaskFailed
	TaskCanceled      = core.TaskCanceled
	StageInitial      = core.StageInitial
	StageDone         = core.StageDone
	StageCanceled     = core.StageCanceled
	PipelineDone      = core.PipelineDone
	PipelineSuspended = core.PipelineSuspended
	PipelineCanceled  = core.PipelineCanceled
)

// Staging actions.
const (
	StagingCopy     = core.StagingCopy
	StagingLink     = core.StagingLink
	StagingMove     = core.StagingMove
	StagingTransfer = core.StagingTransfer
)

// NewTask returns a fresh task; set Executable, Duration, CPUReqs and
// staging directives before adding it to a stage.
func NewTask(name string) *Task { return core.NewTask(name) }

// NewStage returns a fresh stage.
func NewStage(name string) *Stage { return core.NewStage(name) }

// NewPipeline returns a fresh pipeline.
func NewPipeline(name string) *Pipeline { return core.NewPipeline(name) }

// StateDB is the bundled external state database (the stack's MongoDB
// stand-in). It satisfies StateStore and additionally exposes the full
// commit history for live or postmortem analysis.
type StateDB = statedb.DB

// NewStateDB returns an empty external state database for
// AppConfig.StateStore.
func NewStateDB() *StateDB { return statedb.New() }

// Resource describes the acquisition request for a computing
// infrastructure: which CI, how many cores, for how long.
type Resource struct {
	// Name is a catalogued CI: "supermic", "stampede", "comet", "titan".
	Name string
	// Cores is the pilot size.
	Cores int
	// GPUs is the pilot's GPU allocation; when 0 it defaults to one GPU
	// per allocated node on GPU-equipped CIs (Titan). The agent schedules
	// GPU tasks against it exactly as it schedules cores.
	GPUs int
	// Walltime of the pilot job.
	Walltime time.Duration
	// Queue and Project pass through to the batch system.
	Queue   string
	Project string
}

// AppConfig configures an AppManager.
type AppConfig struct {
	// Resource is the CI request. Required.
	Resource Resource
	// Tuning consolidates the per-run performance knobs (batching,
	// sharding, scheduler concurrency, wire format, snapshot cadence); the
	// zero value selects every documented default. The deprecated aliases
	// below override the corresponding Tuning field when set, so existing
	// callers keep their behavior.
	Tuning
	// TimeScale is the wall cost of one virtual second (default 1 ms).
	TimeScale time.Duration
	// TaskRetries is the automatic resubmission budget per failed task.
	TaskRetries int
	// BatchSize is the broker batching knob.
	//
	// Deprecated: set Tuning.BatchSize.
	BatchSize int
	// QueueShards is the broker/store sharding knob.
	//
	// Deprecated: set Tuning.QueueShards.
	QueueShards int
	// SchedulerWorkers is the RTS scheduler-concurrency knob.
	//
	// Deprecated: set Tuning.SchedulerWorkers.
	SchedulerWorkers int
	// WireFormat selects the control-plane wire codec.
	//
	// Deprecated: set Tuning.WireFormat.
	WireFormat string
	// RTSRestarts bounds RTS restarts after runtime-system failures.
	RTSRestarts int
	// JournalPath enables transactional state journaling and recovery into
	// one flat journal file. Mutually exclusive with JournalDir.
	JournalPath string
	// JournalDir enables the full durability mode (docs/recovery.md): a
	// segmented state journal, periodic statedb snapshots with watermark
	// compaction, and RTS submission audit records, all in one directory. A
	// run crashed mid-flight is continued with AppManager.Resume on the same
	// directory — completed tasks are not re-executed. Mutually exclusive
	// with JournalPath.
	JournalDir string
	// SnapshotEvery is the durable mode's snapshot cadence.
	//
	// Deprecated: set Tuning.SnapshotEvery.
	SnapshotEvery int
	// SegmentBytes is the durable mode's journal segment rotation threshold
	// (default journal.DefaultSegmentBytes). Ignored without JournalDir.
	SegmentBytes int64
	// StateStore mirrors every state transition to an external database
	// (paper §II-B4); see NewStateDB for the bundled implementation. A
	// restarted application reacquires completed-task states from it.
	StateStore StateStore
	// Compute enables real kernel computation inside task executables.
	Compute bool
	// Seed drives all stochastic models (failure sampling).
	Seed int64
	// HostName selects the host model running EnTK ("xsede-vm",
	// "titan-login", "null"). Default: chosen from the resource per the
	// paper's setup.
	HostName string
	// Kernels are extra workload kernels to register (use-case packages
	// contribute Specfem and CAnalogs this way).
	Kernels []workload.Kernel
	// FSSpec overrides the shared-filesystem model (default: OLCF Lustre
	// on titan, generic XSEDE elsewhere).
	FSSpec *fsim.Spec
	// QueueWait, when positive, makes the pilot wait in the batch queue.
	QueueWait time.Duration
	// ExtraResources requests additional pilots on other CIs. When
	// present, tasks are mapped dynamically across all pilots — pin a task
	// with Tags["resource"] = CI name, or leave it untagged for
	// least-loaded placement. This is the paper's future-work capability
	// (i), "dynamic mapping of tasks onto heterogeneous resources", and
	// serves the seismic use case's need to interleave leadership-scale
	// simulation with cluster-scale analysis (§III-A).
	ExtraResources []Resource
	// RemoteAgents, when non-empty, replaces the in-process runtime system
	// with a networked one: tasks are shipped over internal/transport
	// frames to entk-agent processes listening on these addresses
	// ("tcp:host:port", "unix:/path"). Each agent hosts its own pilot RTS
	// and simulated CI; the manager-side proxy stripes batches across the
	// connected agents and folds their results and utilization reports
	// back into the run (docs/remote.md). Mutually exclusive with
	// ExtraResources.
	RemoteAgents []string
}

// AppManager drives one ensemble application: it owns the simulated CI, the
// SAGA session, the pilot RTS and the EnTK core, wired exactly as in the
// paper's architecture diagram.
type AppManager struct {
	inner    *core.AppManager
	clock    vclock.Clock
	session  *saga.Session
	cluster  *hpc.Cluster
	clusters []*hpc.Cluster // extra CIs for heterogeneous execution
	fs       *fsim.FS

	// teardownOnce makes the cluster/session teardown idempotent; the run
	// handle returned by Start owns triggering it.
	teardownOnce sync.Once
}

// NewAppManager assembles the full stack for cfg.
func NewAppManager(cfg AppConfig) (*AppManager, error) {
	if cfg.Resource.Name == "" {
		return nil, errors.New("entk: resource name required")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = time.Millisecond
	}
	if len(cfg.RemoteAgents) > 0 && len(cfg.ExtraResources) > 0 {
		return nil, errors.New("entk: RemoteAgents and ExtraResources are mutually exclusive")
	}
	// One resolved-tuning struct feeds both core.Config and rts.Config, so
	// the live knob handle has a single source of truth.
	tun, err := cfg.resolveTuning()
	if err != nil {
		return nil, err
	}
	clock := vclock.NewScaled(cfg.TimeScale)

	spec, err := hpc.LookupSpec(cfg.Resource.Name)
	if err != nil {
		return nil, err
	}
	spec.BaseQueueWait = cfg.QueueWait
	// Default the pilot's GPU allocation from the CI's per-node inventory:
	// a Titan pilot brings one GPU per allocated node (the seismic use
	// case's forward solver runs on those GPUs).
	if cfg.Resource.GPUs == 0 && spec.GPUsPerNode > 0 {
		nodes := (cfg.Resource.Cores + spec.CoresPerNode - 1) / spec.CoresPerNode
		cfg.Resource.GPUs = nodes * spec.GPUsPerNode
	}
	cluster, err := hpc.NewCluster(spec, clock)
	if err != nil {
		return nil, err
	}
	session := saga.NewSession()
	if err := session.Register(saga.NewClusterAdapter(cluster)); err != nil {
		cluster.Close()
		return nil, err
	}
	// Data management (§II-D): transfer staging directives are enacted over
	// per-protocol adapters (cp, scp, gsiscp, sftp, gsisftp, globus).
	transfers, err := saga.NewTransferService(clock)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	session.SetTransferService(transfers)
	// Additional CIs for heterogeneous execution.
	extraClusters := make([]*hpc.Cluster, 0, len(cfg.ExtraResources))
	closeAll := func() {
		cluster.Close()
		for _, c := range extraClusters {
			c.Close()
		}
	}
	for i, res := range cfg.ExtraResources {
		xspec, err := hpc.LookupSpec(res.Name)
		if err != nil {
			closeAll()
			return nil, err
		}
		xspec.BaseQueueWait = cfg.QueueWait
		if res.GPUs == 0 && xspec.GPUsPerNode > 0 {
			nodes := (res.Cores + xspec.CoresPerNode - 1) / xspec.CoresPerNode
			cfg.ExtraResources[i].GPUs = nodes * xspec.GPUsPerNode
		}
		xc, err := hpc.NewCluster(xspec, clock)
		if err != nil {
			closeAll()
			return nil, err
		}
		extraClusters = append(extraClusters, xc)
		if err := session.Register(saga.NewClusterAdapter(xc)); err != nil {
			closeAll()
			return nil, err
		}
	}

	fsSpec := fsim.XSEDEShared()
	if cfg.Resource.Name == "titan" {
		fsSpec = fsim.OLCFLustre()
	}
	if cfg.FSSpec != nil {
		fsSpec = *cfg.FSSpec
	}
	fs, err := fsim.New(fsSpec, clock, cfg.Seed)
	if err != nil {
		closeAll()
		return nil, err
	}

	hostName := cfg.HostName
	var host *hostmodel.Model
	if hostName == "" {
		host = hostmodel.ForCI(cfg.Resource.Name)
	} else {
		host, err = hostmodel.Lookup(hostName)
		if err != nil {
			closeAll()
			return nil, err
		}
	}

	registry := workload.NewRegistry()
	for _, k := range cfg.Kernels {
		if err := registry.Register(k); err != nil {
			closeAll()
			return nil, err
		}
	}

	coreCfg := core.Config{
		Clock:        clock,
		Host:         host,
		JournalPath:  cfg.JournalPath,
		JournalDir:   cfg.JournalDir,
		SegmentBytes: cfg.SegmentBytes,
		StateStore:   cfg.StateStore,
		TaskRetries:  cfg.TaskRetries,
		RTSRestarts:  cfg.RTSRestarts,
	}
	tun.applyCore(&coreCfg)
	am, err := core.NewAppManager(coreCfg)
	if err != nil {
		closeAll()
		return nil, err
	}
	am.SetResource(core.ResourceDesc{
		Resource: cfg.Resource.Name,
		Cores:    cfg.Resource.Cores,
		GPUs:     cfg.Resource.GPUs,
		Walltime: cfg.Resource.Walltime,
		Queue:    cfg.Resource.Queue,
		Project:  cfg.Resource.Project,
	})
	baseRTS := rts.Config{
		Clock:    clock,
		Session:  session,
		Registry: registry,
		FS:       fs,
		Prof:     am.Profiler(),
		Compute:  cfg.Compute,
		Seed:     cfg.Seed,
	}
	tun.applyRTS(&baseRTS)
	if cfg.JournalDir != "" {
		// Durable mode audits RTS submissions next to the state journal, so
		// a resumed run can prove completed tasks were not re-submitted
		// (docs/recovery.md, exactly-once verification).
		baseRTS.StorePath = filepath.Join(cfg.JournalDir, "rts-audit.log")
	}
	switch {
	case len(cfg.RemoteAgents) > 0:
		// Networked control plane: the runtime system lives in entk-agent
		// processes; the factory builds a fresh proxy per (re)start so the
		// heartbeat failover path re-dials the fleet.
		am.SetRTSFactory(remoterts.Factory(remoterts.Config{Addrs: cfg.RemoteAgents}))
	case len(cfg.ExtraResources) == 0:
		am.SetRTSFactory(rts.Factory(baseRTS))
	default:
		// Heterogeneous execution: one pilot per resource behind a routing
		// RTS, all replaceable as one black box on failure.
		resources := append([]Resource{cfg.Resource}, cfg.ExtraResources...)
		am.SetRTSFactory(func(core.ResourceDesc) (core.RTS, error) {
			members := make([]rts.RouterMember, 0, len(resources))
			for _, res := range resources {
				child := baseRTS
				child.Resource = core.ResourceDesc{
					Resource: res.Name,
					Cores:    res.Cores,
					GPUs:     res.GPUs,
					Walltime: res.Walltime,
					Queue:    res.Queue,
					Project:  res.Project,
				}
				p, err := rts.New(child)
				if err != nil {
					return nil, err
				}
				members = append(members, rts.RouterMember{
					Name:     res.Name,
					RTS:      p,
					Resource: res.Name,
					Capacity: res.Cores,
					GPUs:     res.GPUs,
				})
			}
			return rts.NewRouter(members)
		})
	}

	return &AppManager{
		inner:    am,
		clock:    clock,
		session:  session,
		cluster:  cluster,
		clusters: extraClusters,
		fs:       fs,
	}, nil
}

// AddPipelines registers pipelines for execution. Called before Run it
// records them; called during execution (typically from a Stage.PostExec
// hook) it validates and schedules them immediately — adaptive workflows
// can fan out whole new pipelines at runtime, not just stages.
func (a *AppManager) AddPipelines(ps ...*Pipeline) error {
	return a.inner.AddPipelines(ps...)
}

// AddPipelineGroups registers an application expressed as a list of sets of
// pipelines — the paper's extended PST description (§II-B1). Pipelines in a
// group run concurrently; each group starts only after the previous group
// finished. Arbitrary DAGs can be declared directly with Pipeline.After.
func (a *AppManager) AddPipelineGroups(groups ...[]*Pipeline) error {
	return a.inner.AddPipelineGroups(groups...)
}

// Run is a wrapper over core.Run that owns the infrastructure teardown.
// It is returned by Start and is the only way to observe and steer a live
// execution: Wait, Cancel, Snapshot, Events/Subscribe, Pause/Resume and
// CancelPipeline all operate on the run this handle represents. The handle
// is the single owner of cluster/session teardown — Wait releases the
// simulated CI resources exactly once, however many times it is called.
type Run struct {
	a     *AppManager
	inner *core.Run
}

// teardown closes the simulated infrastructure (cluster, SAGA session,
// extra CIs). Idempotent.
func (a *AppManager) teardown() {
	a.teardownOnce.Do(func() {
		a.cluster.Close()
		a.session.Close()
		for _, c := range a.clusters {
			c.Close()
		}
	})
}

// Start executes the application in the background and returns its run
// handle. Setup (validation, messaging, component spawn, pilot submission)
// happens synchronously; on setup failure the infrastructure is torn down
// and the error returned. A second Start (or Run) returns ErrAlreadyRan.
func (a *AppManager) Start(ctx context.Context) (*Run, error) {
	inner, err := a.inner.Start(ctx)
	if err != nil {
		if !errors.Is(err, core.ErrAlreadyRan) {
			a.teardown()
		}
		return nil, err
	}
	return &Run{a: a, inner: inner}, nil
}

// Wait blocks until the run finishes (all pipelines terminal, or the run
// canceled/failed), tears down the engine and the simulated infrastructure,
// and returns the run's error. Safe to call repeatedly and concurrently.
func (r *Run) Wait() error {
	err := r.inner.Wait()
	r.a.teardown()
	return err
}

// Done returns a channel closed when the engine side of the run finishes.
// Call Wait (from any goroutine) to release the infrastructure.
func (r *Run) Done() <-chan struct{} { return r.inner.Done() }

// Cancel aborts the whole run; Wait then returns a *CancelError carrying
// reason (it unwraps to context.Canceled).
func (r *Run) Cancel(reason string) { r.inner.Cancel(reason) }

// Snapshot returns a point-in-time Progress view: per-state entity counts,
// per-pipeline cursors, task attempts, pilot utilization, virtual clock.
func (r *Run) Snapshot() Progress { return r.inner.Snapshot() }

// Events returns a filtered stream of lifecycle transitions and a cancel
// function. The stream is bounded and drop-oldest: a stalled consumer never
// back-pressures the engine (see docs/api.md for the full contract). To
// observe the Dropped counter, use Subscribe.
func (r *Run) Events(f EventFilter) (<-chan Event, func()) { return r.inner.Events(f) }

// Subscribe attaches a typed event subscription with an inspectable handle.
func (r *Run) Subscribe(f EventFilter) *EventSub { return r.inner.Subscribe(f) }

// Pause suspends one pipeline at the next stage boundary: the stage in
// flight finishes, no further stage starts until Resume.
func (r *Run) Pause(pipelineUID string) error { return r.inner.Pause(pipelineUID) }

// Resume reactivates a paused pipeline.
func (r *Run) Resume(pipelineUID string) error { return r.inner.Resume(pipelineUID) }

// CancelPipeline cancels one pipeline while its siblings keep executing;
// the pipeline and its stages and tasks reach terminal CANCELED states.
func (r *Run) CancelPipeline(pipelineUID string) error {
	return r.inner.CancelPipeline(pipelineUID)
}

// Subscribe attaches a typed event subscription before or during execution.
// Subscriptions taken before Start are guaranteed to observe the run's very
// first transition.
func (a *AppManager) Subscribe(f EventFilter) *EventSub { return a.inner.Subscribe(f) }

// AddEventPeerSource registers a provider of remote event-subscriber stats
// (typically an event server's PeerStats); Snapshot folds the reported
// peers into Progress.EventPeers.
func (a *AppManager) AddEventPeerSource(f func() []EventPeerStats) { a.inner.AddEventPeerSource(f) }

// Snapshot returns a Progress view of the application (valid before,
// during and after execution).
func (a *AppManager) Snapshot() Progress { return a.inner.Snapshot() }

// Run executes the application to completion: a thin Start+Wait wrapper.
func (a *AppManager) Run(ctx context.Context) error {
	run, err := a.Start(ctx)
	if err != nil {
		return err
	}
	return run.Wait()
}

// Resume continues a previously journaled run from journalDir: the state
// recorded by the crashed incarnation (newest snapshot plus journal tail) is
// reconstructed, completed tasks are not re-executed, and the run proceeds
// to completion. The application must be registered (AddPipelines) with the
// same description — and, for cross-process resume, deterministic UIDs (the
// JSON Build path assigns them) — before calling Resume. Construct the
// AppManager with AppConfig.JournalDir set to the same directory so the RTS
// audit log lands next to the journal; Resume overrides the core journal
// location either way. Resuming a fresh directory is a durable first run.
// Like Start, Resume is single-shot per AppManager.
func (a *AppManager) Resume(ctx context.Context, journalDir string) (*Run, error) {
	inner, err := a.inner.Resume(ctx, journalDir)
	if err != nil {
		if !errors.Is(err, core.ErrAlreadyRan) {
			a.teardown()
		}
		return nil, err
	}
	return &Run{a: a, inner: inner}, nil
}

// Resume builds an AppManager for cfg (which must set JournalDir), registers
// pipes, and continues the journaled run found in cfg.JournalDir — the
// package-level convenience behind `entk-run -resume`.
func Resume(ctx context.Context, cfg AppConfig, pipes ...*Pipeline) (*Run, error) {
	if cfg.JournalDir == "" {
		return nil, errors.New("entk: Resume requires AppConfig.JournalDir")
	}
	am, err := NewAppManager(cfg)
	if err != nil {
		return nil, err
	}
	if err := am.AddPipelines(pipes...); err != nil {
		am.teardown()
		return nil, err
	}
	return am.Resume(ctx, cfg.JournalDir)
}

// Report returns the paper-style overhead decomposition of the run.
func (a *AppManager) Report() profiler.Report {
	return a.inner.Profiler().Report()
}

// Clock exposes the application's virtual clock.
func (a *AppManager) Clock() vclock.Clock { return a.clock }

// Filesystem exposes the shared-filesystem model (statistics).
func (a *AppManager) Filesystem() *fsim.FS { return a.fs }

// Core exposes the underlying engine for advanced use (experiments,
// adaptive nudging).
func (a *AppManager) Core() *core.AppManager { return a.inner }

// Nudge wakes the scheduler after out-of-band workflow mutation.
func (a *AppManager) Nudge() { a.inner.Nudge() }

// CIs lists the catalogued computing infrastructures.
func CIs() []string { return hpc.Names() }
