package entk

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/daemon"
	"repro/internal/msgcodec"
	"repro/internal/transport"
)

// ErrAdmissionRejected is returned by Client.Submit when the daemon cannot
// and will never admit the run: the claim exceeds the shared pilot, the
// tenant quota is exhausted, or the admission queue is full. A saturated
// pool with queue space is not a rejection — the run is accepted in state
// "QUEUED" and starts when cores free up.
var ErrAdmissionRejected = daemon.ErrAdmissionRejected

// RunInfo is the daemon's view of one hosted run.
type RunInfo = daemon.RunInfo

// Client talks to an entkd daemon over its unix socket, using the same
// [0xBF] wire frames as the in-process control plane (docs/daemon.md). The
// protocol is one request per connection, so a Client carries no connection
// state and is safe for concurrent use.
type Client struct {
	socket string
	fmt    msgcodec.Format
}

// SubmitOptions tunes one submission.
type SubmitOptions struct {
	// Tenant names the submitting tenant for fairness weights and quota
	// accounting; empty selects the daemon's default tenant.
	Tenant string
	// Journal gives the run a durable per-run journal directory under the
	// daemon's journal root, making it individually resumable.
	Journal bool
}

// Dial returns a client for the daemon at socketPath, verifying the daemon
// answers. No connection is retained.
func Dial(socketPath string) (*Client, error) {
	conn, err := net.DialTimeout("unix", socketPath, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("entk: daemon at %s: %w", socketPath, err)
	}
	conn.Close() //nolint:errcheck // probe connection
	return &Client{socket: socketPath}, nil
}

// roundTrip dials, sends one request frame and reads one reply frame. ctx
// cancellation closes the connection, unblocking the read.
func (c *Client) roundTrip(ctx context.Context, req []byte) (msgcodec.RunOp, error) {
	conn, err := net.Dial("unix", c.socket)
	if err != nil {
		return msgcodec.RunOp{}, err
	}
	defer conn.Close() //nolint:errcheck // single-request protocol
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				conn.Close() //nolint:errcheck // unblocks the pending read
			case <-stop:
			}
		}()
	}
	if err := transport.WriteFrame(conn, req); err != nil {
		return msgcodec.RunOp{}, err
	}
	body, err := transport.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		if ctx.Err() != nil {
			return msgcodec.RunOp{}, ctx.Err()
		}
		return msgcodec.RunOp{}, err
	}
	return msgcodec.DecodeRunOp(body)
}

// opError converts a daemon-reported error string back into a typed error
// where the type matters to callers.
func opError(msg string) error {
	if strings.Contains(msg, daemon.ErrAdmissionRejected.Error()) {
		return fmt.Errorf("%w: %s", ErrAdmissionRejected, msg)
	}
	return errors.New(msg)
}

// Submit sends an appjson document to the daemon and returns a reference to
// the new run. The run may start immediately or sit queued behind the
// admission ledger; rejection surfaces as ErrAdmissionRejected.
func (c *Client) Submit(ctx context.Context, appJSON []byte, opts SubmitOptions) (*RunRef, error) {
	req, err := c.fmt.EncodeDaemonSubmit(msgcodec.DaemonSubmit{
		Tenant:  opts.Tenant,
		Journal: opts.Journal,
		AppJSON: appJSON,
	})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if !reply.OK {
		return nil, opError(reply.Err)
	}
	ref := &RunRef{c: c, ID: reply.RunID}
	if len(reply.Strs) > 0 {
		ref.State = reply.Strs[0]
	}
	return ref, nil
}

// Attach returns a reference to an already-submitted run by ID. The ID is
// not validated until the first operation.
func (c *Client) Attach(runID string) *RunRef { return &RunRef{c: c, ID: runID} }

// List returns every run the daemon currently tracks, oldest first.
func (c *Client) List(ctx context.Context) ([]RunInfo, error) {
	req, err := c.fmt.EncodeRunOp(msgcodec.RunOp{Op: "list"})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if !reply.OK {
		return nil, opError(reply.Err)
	}
	var out []RunInfo
	for i := 0; i+4 <= len(reply.Strs); i += 4 {
		info := RunInfo{ID: reply.Strs[i], Tenant: reply.Strs[i+1], State: reply.Strs[i+2], Err: reply.Strs[i+3]}
		if k := i / 4; k < len(reply.Ints) {
			info.Cores = int(reply.Ints[k])
		}
		out = append(out, info)
	}
	return out, nil
}

// Events streams a run's lifecycle transitions over a dedicated connection.
// kinds filters by entity ("task", "stage", "pipeline"); empty receives all.
// The returned cancel function closes the stream; the channel also closes
// when the run finishes.
func (c *Client) Events(ctx context.Context, runID string, kinds ...EventKind) (<-chan Event, func(), error) {
	strs := make([]string, len(kinds))
	for i, k := range kinds {
		strs[i] = string(k)
	}
	req, err := c.fmt.EncodeRunOp(msgcodec.RunOp{Op: "events", RunID: runID, Strs: strs})
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.Dial("unix", c.socket)
	if err != nil {
		return nil, nil, err
	}
	if err := transport.WriteFrame(conn, req); err != nil {
		conn.Close() //nolint:errcheck // dial-and-fail path
		return nil, nil, err
	}
	r := bufio.NewReader(conn)
	// The first frame is either the first event, "end", or an error ack —
	// read it synchronously so subscription errors surface here.
	first, err := transport.ReadFrame(r)
	if err != nil {
		conn.Close() //nolint:errcheck // dial-and-fail path
		return nil, nil, err
	}
	firstOp, err := msgcodec.DecodeRunOp(first)
	if err != nil {
		conn.Close() //nolint:errcheck // dial-and-fail path
		return nil, nil, err
	}
	if firstOp.Err != "" {
		conn.Close() //nolint:errcheck // dial-and-fail path
		return nil, nil, opError(firstOp.Err)
	}
	out := make(chan Event, 64)
	cancel := func() { conn.Close() } //nolint:errcheck // stream teardown
	if done := ctx.Done(); done != nil {
		go func() {
			<-done
			conn.Close() //nolint:errcheck // stream teardown
		}()
	}
	go func() {
		defer close(out)
		defer conn.Close() //nolint:errcheck // stream teardown
		op := firstOp
		for {
			if op.Op == "end" || op.Op != "event" {
				return
			}
			if ev, ok := decodeEvent(op); ok {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
			body, err := transport.ReadFrame(r)
			if err != nil {
				return
			}
			if op, err = msgcodec.DecodeRunOp(body); err != nil {
				return
			}
		}
	}()
	return out, cancel, nil
}

// decodeEvent unpacks the wire shape produced by the daemon's event stream.
func decodeEvent(op msgcodec.RunOp) (Event, bool) {
	if len(op.Strs) < 7 || len(op.Ints) < 2 {
		return Event{}, false
	}
	return Event{
		Kind:     EventKind(op.Strs[0]),
		UID:      op.Strs[1],
		Name:     op.Strs[2],
		Pipeline: op.Strs[3],
		Stage:    op.Strs[4],
		From:     op.Strs[5],
		To:       op.Strs[6],
		VTime:    time.Unix(0, op.Ints[0]),
		Attempt:  int(op.Ints[1]),
	}, true
}

// RunRef is a client-side reference to one daemon-hosted run.
type RunRef struct {
	c *Client
	// ID is the daemon-assigned run identifier.
	ID string
	// State is the admission state reported at submission ("RUNNING" or
	// "QUEUED"); use Info for the live state.
	State string
}

// Wait blocks until the run reaches a terminal state. It returns nil for a
// successful run and the run's error otherwise.
func (r *RunRef) Wait(ctx context.Context) error {
	req, err := r.c.fmt.EncodeRunOp(msgcodec.RunOp{Op: "wait", RunID: r.ID})
	if err != nil {
		return err
	}
	reply, err := r.c.roundTrip(ctx, req)
	if err != nil {
		return err
	}
	if len(reply.Strs) > 0 {
		r.State = reply.Strs[0]
	}
	if !reply.OK {
		return opError(reply.Err)
	}
	return nil
}

// Info returns the run's current daemon-side view.
func (r *RunRef) Info(ctx context.Context) (RunInfo, error) {
	req, err := r.c.fmt.EncodeRunOp(msgcodec.RunOp{Op: "info", RunID: r.ID})
	if err != nil {
		return RunInfo{}, err
	}
	reply, err := r.c.roundTrip(ctx, req)
	if err != nil {
		return RunInfo{}, err
	}
	if !reply.OK {
		return RunInfo{}, opError(reply.Err)
	}
	info := RunInfo{ID: reply.RunID}
	if len(reply.Strs) >= 3 {
		info.Tenant, info.State, info.Err = reply.Strs[0], reply.Strs[1], reply.Strs[2]
	}
	if len(reply.Ints) >= 1 {
		info.Cores = int(reply.Ints[0])
	}
	return info, nil
}

// Cancel aborts the run (queued or running).
func (r *RunRef) Cancel(ctx context.Context, reason string) error {
	return r.unary(ctx, "cancel", reason)
}

// Pause suspends one pipeline of the run at its next stage boundary.
func (r *RunRef) Pause(ctx context.Context, pipelineUID string) error {
	return r.unary(ctx, "pause", pipelineUID)
}

// Resume reactivates a paused pipeline of the run.
func (r *RunRef) Resume(ctx context.Context, pipelineUID string) error {
	return r.unary(ctx, "resume", pipelineUID)
}

// Events streams this run's lifecycle transitions (see Client.Events).
func (r *RunRef) Events(ctx context.Context, kinds ...EventKind) (<-chan Event, func(), error) {
	return r.c.Events(ctx, r.ID, kinds...)
}

func (r *RunRef) unary(ctx context.Context, op, arg string) error {
	var strs []string
	if arg != "" {
		strs = []string{arg}
	}
	req, err := r.c.fmt.EncodeRunOp(msgcodec.RunOp{Op: op, RunID: r.ID, Strs: strs})
	if err != nil {
		return err
	}
	reply, err := r.c.roundTrip(ctx, req)
	if err != nil {
		return err
	}
	if !reply.OK {
		return opError(reply.Err)
	}
	return nil
}
