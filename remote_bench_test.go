package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remoterts"
)

// benchEchoRTS completes every submitted task immediately, so the three
// arms of BenchmarkRemoteRoundTrip measure pure control-plane cost: the
// manager→RTS submit path and the result path back, with zero scheduling
// or execution latency in between.
type benchEchoRTS struct {
	mu       sync.Mutex
	out      chan core.TaskResult
	stopped  bool
	alive    atomic.Bool
	stopOnce sync.Once
}

func newBenchEchoRTS() *benchEchoRTS {
	e := &benchEchoRTS{out: make(chan core.TaskResult, 4096)}
	e.alive.Store(true)
	return e
}

func (e *benchEchoRTS) Name() string                        { return "bench-echo" }
func (e *benchEchoRTS) Start(ctx context.Context) error     { return nil }
func (e *benchEchoRTS) Completions() <-chan core.TaskResult { return e.out }
func (e *benchEchoRTS) Alive() bool                         { return e.alive.Load() }
func (e *benchEchoRTS) Stats() core.RTSStats                { return core.RTSStats{} }

func (e *benchEchoRTS) Submit(tasks []core.TaskDescription) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return context.Canceled
	}
	for _, t := range tasks {
		e.out <- core.TaskResult{UID: t.UID, Started: time.Unix(1, 0), Finished: time.Unix(2, 0)}
	}
	return nil
}

func (e *benchEchoRTS) Stop() error {
	e.stopOnce.Do(func() {
		e.mu.Lock()
		e.stopped = true
		e.mu.Unlock()
		close(e.out)
	})
	return nil
}

// roundTrip submits one 64-task batch and drains the 64 results.
func roundTrip(b *testing.B, r core.RTS, tasks []core.TaskDescription) {
	b.Helper()
	if err := r.Submit(tasks); err != nil {
		b.Fatal(err)
	}
	for n := 0; n < len(tasks); n++ {
		if _, ok := <-r.Completions(); !ok {
			b.Fatal("completions closed mid-drain")
		}
	}
}

// BenchmarkRemoteRoundTrip prices the network tax of the remote control
// plane: one 64-task batched submit plus the 64 results back, against an
// echo RTS reached (a) directly in-process, (b) through an agent over a
// unix socket, (c) through an agent over loopback TCP. The remote arms pay
// codec + framing + kernel socket round-trips; the spread between (a) and
// (b)/(c) is the per-batch overhead a deployment accepts for putting the
// pilot on another machine.
func BenchmarkRemoteRoundTrip(b *testing.B) {
	const batch = 64
	tasks := make([]core.TaskDescription, batch)
	for i := range tasks {
		tasks[i] = core.TaskDescription{UID: fmt.Sprintf("task.%04d", i), Executable: "sleep"}
	}

	b.Run("inproc", func(b *testing.B) {
		r := newBenchEchoRTS()
		defer r.Stop() //nolint:errcheck
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			roundTrip(b, r, tasks)
		}
	})

	remoteArm := func(addr string) func(b *testing.B) {
		return func(b *testing.B) {
			agent, err := remoterts.NewAgent(remoterts.AgentConfig{
				Addr:    addr,
				Name:    "bench-agent",
				Factory: func(core.ResourceDesc) (core.RTS, error) { return newBenchEchoRTS(), nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			defer agent.Close()
			proxy, err := remoterts.NewProxy(remoterts.Config{Addrs: []string{agent.Addr()}})
			if err != nil {
				b.Fatal(err)
			}
			if err := proxy.Start(context.Background()); err != nil {
				b.Fatal(err)
			}
			defer proxy.Stop() //nolint:errcheck
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				roundTrip(b, proxy, tasks)
			}
		}
	}

	b.Run("unix", remoteArm("unix:"+filepath.Join(b.TempDir(), "bench.sock")))
	b.Run("tcp", remoteArm("tcp:127.0.0.1:0"))
}
