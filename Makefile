# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets so a green local run means a green CI run. The benchmark
# baseline workflow (bench-json / bench-gate / bench-baseline) is described
# in docs/ci.md.

GO ?= go

# The benchmark subset tracked by the regression gate: the broker hot-path
# pipelines, the multi-consumer ablation, the multi-scheduler agent
# ablation (the RTS dispatch path), the run-control event-stream
# overhead (events-off must stay the no-subscriber fast path; events-on
# within ~10% of it), the synchronizer round-trip shapes (batched frames
# must stay O(1) per stage), the Fig 6 wire-codec ablation (binary must
# stay ahead of JSON) and the daemon multi-run comparison (K concurrent
# entkd-hosted runs vs K sequential in-process runs — the shared pilot
# pool must keep amortizing setup) and the remote round-trip ablation
# (the networked control plane's batched-frame tax over unix/TCP against
# the in-process path), the autotune overhead contract (controller-on
# steady state within 3% of controller-off; docs/autotune.md) and the
# autotune ablation (bursty workload: static worst/best vs the live
# controller). Stable, fast, and the numbers this
# repo's PRs argue about. benchdiff also gates allocs/op at 10%, and on CI the alloc gate
# is a hard failure while ns/op stays warn-only (see docs/ci.md).
BENCH_GATE := ^(BenchmarkBroker|BenchmarkAblationBrokerConsumers|BenchmarkAblationSchedulers|BenchmarkEventStreamOverhead|BenchmarkSyncTransition|BenchmarkFig6Codec|BenchmarkRecovery|BenchmarkDaemonMultiRun|BenchmarkRemoteRoundTrip|BenchmarkAutotuneOverhead|BenchmarkAblationAutotune)

.PHONY: build test bench lint bench-json bench-gate bench-baseline check-artifacts daemon-smoke remote-smoke

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over every benchmark so they cannot bit-rot; real measurements
# use `go test -bench=<pattern> -benchmem -benchtime=...` directly.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Run the gated benchmark subset long enough for stable numbers and write
# them as BENCH_PR2.json (benchmark -> ns/op, B/op, allocs/op). Two counts;
# benchdiff keeps the best run of each, damping scheduler noise.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchmem -benchtime 300ms -count 2 . | tee bench.out
	$(GO) run ./cmd/benchdiff -parse bench.out -out BENCH_PR2.json

# Compare fresh numbers against the checked-in baseline; exits nonzero on a
# >25% ns/op regression. CI runs the same comparison with -warn (shared
# runners are too noisy for a hard gate).
bench-gate: bench-json
	$(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -current BENCH_PR2.json

# Re-record the baseline after an intentional performance change.
bench-baseline: bench-json
	cp BENCH_PR2.json BENCH_BASELINE.json

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# Fail if any gitignored build artifact (bench.out, *.test, ...) is tracked
# in the index — they belong to local runs, never to the repository.
check-artifacts:
	@tracked=$$(git ls-files -i -c --exclude-standard); \
	if [ -n "$$tracked" ]; then \
		echo "gitignored artifacts are tracked:"; echo "$$tracked"; exit 1; \
	fi

# End-to-end entkd smoke: start the daemon, submit the shipped example app
# over the unix socket, wait for DONE, shut down and assert no leaked lease.
daemon-smoke:
	./scripts/daemon-smoke.sh

# End-to-end networked-control-plane smoke: start two entk-agent processes
# on localhost TCP, drive the example app through both from one manager,
# assert every task DONE with zero stranded frames.
remote-smoke:
	./scripts/remote-smoke.sh
