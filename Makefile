# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets so a green local run means a green CI run.

GO ?= go

.PHONY: build test bench lint

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over every benchmark so they cannot bit-rot; real measurements
# use `go test -bench=<pattern> -benchmem -benchtime=...` directly.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...
