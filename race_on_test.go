//go:build race

package repro

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions skip themselves under it.
const raceEnabled = true
