// Command entk-prototype runs the Fig 6 broker prototype benchmark at full
// paper scale: 10⁶ task objects pushed through N queues by N producers and
// pulled by N consumers into an empty RTS module, for N in {1, 2, 4, 8},
// reporting processing times and base/peak memory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		tasks  = flag.Int("tasks", 1000000, "number of task objects to push through the broker")
		uneven = flag.Bool("uneven", false, "also run uneven producer/consumer distributions")
	)
	flag.Parse()

	rows, err := experiments.Fig6Prototype(*tasks, []int{1, 2, 4, 8})
	if err != nil {
		fmt.Fprintf(os.Stderr, "entk-prototype: %v\n", err)
		os.Exit(1)
	}
	experiments.RenderFig6(os.Stdout, rows)

	if *uneven {
		fmt.Println("\nUneven distributions (the paper notes these are less efficient):")
		urows, err := experiments.Fig6Uneven(*tasks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "entk-prototype: %v\n", err)
			os.Exit(1)
		}
		experiments.RenderFig6(os.Stdout, urows)
	}
}
