// Command entkd runs the EnTK service daemon: a long-lived process hosting
// many concurrent PST applications over one shared broker and one shared
// pilot pool (docs/daemon.md). Clients submit appjson documents over the
// unix socket with entk.Client or `entk-run -daemon`; each submission
// becomes an isolated run drawing cores from the shared pilot under
// per-tenant weighted-fair dispatch and quota enforcement.
//
// Run with:
//
//	entkd -socket /tmp/entkd.sock -resource titan -cores 64 [-tenants alice:3:32,bob:1:0]
//
// -tenants configures fairness as name:weight[:maxcores] triples; unknown
// tenants default to weight 1 with no quota. The daemon serves until
// SIGINT/SIGTERM, then cancels hosted runs, reconciles the lease ledger a
// final time and reports how many leases leaked (0 on a clean lifecycle).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
)

func main() {
	var (
		socket     = flag.String("socket", "", "unix socket path to serve (required)")
		resource   = flag.String("resource", "titan", "catalogued CI hosting the shared pilot")
		cores      = flag.Int("cores", 64, "shared pilot cores")
		gpus       = flag.Int("gpus", 0, "shared pilot GPUs (0 = CI default)")
		walltime   = flag.Duration("walltime", 24*time.Hour, "shared pilot walltime (virtual)")
		scale      = flag.Duration("scale", time.Millisecond, "wall time per virtual second")
		tenants    = flag.String("tenants", "", "tenant fairness spec: name:weight[:maxcores],...")
		overcommit = flag.Float64("overcommit", 1.0, "lease admission factor over physical cores (>= 1)")
		queueLen   = flag.Int("queue", 16, "admission queue length (-1 disables queueing)")
		retention  = flag.Duration("retention", time.Hour, "how long terminal runs stay listed")
		jroot      = flag.String("journal-root", "", "root directory for per-run journals (enables journaled submissions)")
		wire       = flag.String("wire", "binary", "control-plane wire format: binary or json")
		scheds     = flag.Int("schedulers", 0, "agent scheduler loops per hosted run (0 = auto)")
		seed       = flag.Int64("seed", 0, "seed for stochastic models")
	)
	flag.Parse()
	if *socket == "" {
		fmt.Fprintln(os.Stderr, "entkd: -socket is required (see -h)")
		os.Exit(2)
	}
	tcfg, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		SocketPath:        *socket,
		Resource:          *resource,
		Cores:             *cores,
		GPUs:              *gpus,
		Walltime:          *walltime,
		TimeScale:         *scale,
		Tenants:           tcfg,
		OvercommitFactor:  *overcommit,
		AdmissionQueueLen: *queueLen,
		RunRetention:      *retention,
		JournalRoot:       *jroot,
		WireFormat:        *wire,
		SchedulerWorkers:  *scheds,
		Seed:              *seed,
	})
	if err != nil {
		fatal(err)
	}
	srv, err := d.Serve()
	if err != nil {
		d.Stop()
		fatal(err)
	}
	fmt.Printf("entkd: serving %s (%d cores) on %s\n", *resource, *cores, *socket)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Printf("entkd: %s — draining %d runs\n", sig, len(d.List()))
	srv.Close()
	d.Stop()
	fmt.Printf("leaked leases: %d\n", d.LeakedLeases())
	if d.LeakedLeases() != 0 {
		os.Exit(1)
	}
}

// parseTenants decodes "name:weight[:maxcores]" triples.
func parseTenants(spec string) (map[string]daemon.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]daemon.TenantConfig)
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("entkd: bad tenant spec %q (want name:weight[:maxcores])", item)
		}
		w, err := strconv.Atoi(parts[1])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("entkd: bad tenant weight in %q", item)
		}
		tc := daemon.TenantConfig{Weight: w}
		if len(parts) == 3 {
			mc, err := strconv.Atoi(parts[2])
			if err != nil || mc < 0 {
				return nil, fmt.Errorf("entkd: bad tenant core cap in %q", item)
			}
			tc.MaxCores = mc
		}
		out[parts[0]] = tc
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "entkd: %v\n", err)
	os.Exit(1)
}
