// Command benchdiff converts `go test -bench` output into a stable JSON
// baseline and compares two such baselines, failing when a tracked
// benchmark regresses beyond a threshold. It is the benchmark-regression
// gate the CI bench-smoke job runs (see docs/ci.md).
//
// Parse mode — turn benchmark text output into JSON:
//
//	go test -run '^$' -bench 'BenchmarkBroker' -benchmem . | tee bench.out
//	benchdiff -parse bench.out -out BENCH_PR2.json
//
// Compare mode — gate the current numbers against a checked-in baseline:
//
//	benchdiff -baseline BENCH_BASELINE.json -current BENCH_PR2.json
//	benchdiff -baseline BENCH_BASELINE.json -current BENCH_PR2.json -warn
//	benchdiff -baseline BENCH_BASELINE.json -current BENCH_PR2.json -warn-ns
//
// Compare exits nonzero when any benchmark present in both files regressed
// by more than -threshold percent in ns/op (default 25), or by more than
// -alloc-threshold percent in allocs/op (default 10; negative disables).
// Allocation counts are deterministic where wall time is noisy, so the
// alloc gate is tighter — it is what holds the codec hot paths to their
// pooled-encoder contracts (see docs/ci.md). A benchmark whose baseline is
// zero allocs/op regresses by allocating at all. -warn reports the same
// findings but always exits zero. -warn-ns is the CI mode: ns/op
// regressions warn only (shared-runner wall time is too noisy for a hard
// gate), while allocs/op regressions and missing benchmarks still fail —
// allocation counts are deterministic even on shared hardware. The full
// hard gate (no flag) is for like-for-like hardware. Benchmarks present
// only in the baseline are reported as missing (a rename silently dropping
// coverage should be visible); benchmarks present only in the current file
// are listed as new.
//
// Names are normalized by stripping the trailing -<GOMAXPROCS> suffix so
// baselines recorded on different machines stay comparable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's tracked numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"b_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_op,omitempty"`
}

// File is the on-disk JSON schema: benchmark name -> numbers.
type File map[string]Result

// benchLine matches e.g.
//
//	BenchmarkBrokerBatch64-8   100   761136 ns/op   123 B/op   64 allocs/op   1.07e+07 msgs/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix matches the -N parallelism suffix Go appends to names
// when GOMAXPROCS != 1. It is only stripped when the very same -N suffix
// appears on every benchmark of the run: a sub-benchmark whose own name
// ends in a number (e.g. .../shards-8) never ends on the same -N across
// the whole file unless GOMAXPROCS really added it.
var gomaxprocsSuffix = regexp.MustCompile(`-(\d+)$`)

func parse(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type entry struct {
		name string
		res  Result
	}
	var entries []entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		var res Result
		seen := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if seen {
			entries = append(entries, entry{name: m[1], res: res})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Detect the run-wide GOMAXPROCS suffix: present iff every name ends
	// in the same -N.
	suffix := ""
	for i, e := range entries {
		m := gomaxprocsSuffix.FindStringSubmatch(e.name)
		if m == nil {
			suffix = ""
			break
		}
		if i == 0 {
			suffix = "-" + m[1]
			continue
		}
		if "-"+m[1] != suffix {
			suffix = ""
			break
		}
	}
	out := File{}
	for _, e := range entries {
		name := strings.TrimSuffix(e.name, suffix)
		// Keep the best (lowest ns/op) of repeated runs: benchmarks may
		// run with -count > 1 for stability.
		if prev, ok := out[name]; !ok || e.res.NsPerOp < prev.NsPerOp {
			out[name] = e.res
		}
	}
	return out, nil
}

func load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func save(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedNames(f File) []string {
	names := make([]string, 0, len(f))
	for n := range f {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func compare(baseline, current File, thresholdPct, allocThresholdPct float64) (nsRegressions, allocRegressions, missing, added []string) {
	for _, name := range sortedNames(baseline) {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if base.NsPerOp > 0 {
			deltaPct := 100 * (cur.NsPerOp - base.NsPerOp) / base.NsPerOp
			if deltaPct > thresholdPct {
				nsRegressions = append(nsRegressions,
					fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, threshold %.0f%%)",
						name, base.NsPerOp, cur.NsPerOp, deltaPct, thresholdPct))
			}
		}
		if allocThresholdPct < 0 {
			continue
		}
		switch {
		case base.AllocsPerOp > 0:
			deltaPct := 100 * (cur.AllocsPerOp - base.AllocsPerOp) / base.AllocsPerOp
			if deltaPct > allocThresholdPct {
				allocRegressions = append(allocRegressions,
					fmt.Sprintf("%s: %.0f -> %.0f allocs/op (%+.1f%%, threshold %.0f%%)",
						name, base.AllocsPerOp, cur.AllocsPerOp, deltaPct, allocThresholdPct))
			}
		case cur.AllocsPerOp > 0:
			// A zero-alloc baseline is a contract, not a measurement: any
			// allocation at all is a regression.
			allocRegressions = append(allocRegressions,
				fmt.Sprintf("%s: 0 -> %.0f allocs/op (baseline was allocation-free)",
					name, cur.AllocsPerOp))
		}
	}
	for _, name := range sortedNames(current) {
		if _, ok := baseline[name]; !ok {
			added = append(added, name)
		}
	}
	return nsRegressions, allocRegressions, missing, added
}

func main() {
	var (
		parseIn   = flag.String("parse", "", "parse `go test -bench` output from this file")
		out       = flag.String("out", "", "with -parse: write the JSON baseline here")
		baseline  = flag.String("baseline", "", "compare: the checked-in baseline JSON")
		current   = flag.String("current", "", "compare: the freshly measured JSON")
		threshold = flag.Float64("threshold", 25, "regression threshold in percent of ns/op")
		allocThr  = flag.Float64("alloc-threshold", 10, "regression threshold in percent of allocs/op (negative disables the alloc gate)")
		warn      = flag.Bool("warn", false, "report regressions but exit zero (noisy shared runners)")
		warnNs    = flag.Bool("warn-ns", false, "ns/op regressions warn only; allocs/op regressions and missing benchmarks still fail (the CI mode: wall time is noisy on shared runners, allocation counts are deterministic)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	switch {
	case *parseIn != "":
		if *out == "" {
			fail(fmt.Errorf("-parse requires -out"))
		}
		f, err := parse(*parseIn)
		if err != nil {
			fail(err)
		}
		if len(f) == 0 {
			fail(fmt.Errorf("no benchmark results found in %s", *parseIn))
		}
		if err := save(*out, f); err != nil {
			fail(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(f), *out)

	case *baseline != "" && *current != "":
		base, err := load(*baseline)
		if err != nil {
			fail(err)
		}
		cur, err := load(*current)
		if err != nil {
			fail(err)
		}
		nsRegs, allocRegs, missing, added := compare(base, cur, *threshold, *allocThr)
		for _, name := range added {
			fmt.Printf("benchdiff: new benchmark (not in baseline): %s\n", name)
		}
		for _, name := range missing {
			fmt.Printf("benchdiff: MISSING from current run (renamed or dropped?): %s\n", name)
		}
		for _, r := range nsRegs {
			fmt.Printf("benchdiff: REGRESSION %s\n", r)
		}
		for _, r := range allocRegs {
			fmt.Printf("benchdiff: REGRESSION %s\n", r)
		}
		if len(nsRegs) == 0 && len(allocRegs) == 0 && len(missing) == 0 {
			fmt.Printf("benchdiff: OK — %d benchmarks within %.0f%% of baseline\n",
				len(base), *threshold)
			return
		}
		switch {
		case *warn:
			fmt.Println("benchdiff: warn-only mode, not failing the build")
			return
		case *warnNs && len(allocRegs) == 0 && len(missing) == 0:
			fmt.Println("benchdiff: ns/op regressions warn only (-warn-ns), not failing the build")
			return
		}
		os.Exit(1)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
