// Command entk-experiments regenerates the paper's evaluation (§IV): every
// figure from Fig 6 through Fig 11. Each experiment prints the same rows or
// series the paper reports, in virtual seconds where the paper reports
// seconds.
//
// Usage:
//
//	entk-experiments -exp all            # run everything
//	entk-experiments -exp 5,6            # weak and strong scaling only
//	entk-experiments -exp 7 -quick       # smoke-test sizing
//	entk-experiments -exp 0 -tasks 1000000
//
// Experiment numbers: 0 = Fig 6 prototype; 1-4 = Fig 7a-d overheads;
// 5 = Fig 8 weak scaling; 6 = Fig 9 strong scaling; 7 = Fig 10 seismic
// ensemble; 8 = Fig 11 AnEn adaptive vs random; 9 = Fig 10 full series
// (every ensemble size x concurrency); 10 = Fig 6 BatchSize x
// consumer-count grid over the sharded broker; 11 = Fig 8-style
// weak-scaling sweep across broker batch sizes; 12 = Fig 6 wire-codec
// ablation (batched broker, JSON vs binary task bodies); 13 = Fig 8-style
// weak-scaling sweep across agent scheduler counts (the multi-scheduler
// agent over the sharded task store); 14 = live-autotuning ablation (bursty
// workload, the knob controller vs every static grid setting).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiments to run: comma-separated subset of 0-9, or 'all'")
		quick     = flag.Bool("quick", false, "shrink experiment sizes (smoke test)")
		scale     = flag.Duration("scale", 0, "wall time per virtual second (0 = per-experiment default)")
		fig6Tasks = flag.Int("tasks", 1000000, "task count for the Fig 6 prototype")
		verbose   = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	opts := &experiments.Options{Quick: *quick, Scale: *scale}
	if *verbose {
		opts.Verbose = os.Stderr
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for i := 0; i <= 8; i++ {
			want[fmt.Sprint(i)] = true
		}
	} else {
		for _, s := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "entk-experiments: %v\n", err)
		os.Exit(1)
	}

	start := time.Now()
	if want["0"] {
		tasks := *fig6Tasks
		if *quick {
			tasks = 50000
		}
		rows, err := experiments.Fig6Prototype(tasks, nil)
		if err != nil {
			fail(err)
		}
		experiments.RenderFig6(os.Stdout, rows)
	}
	if want["1"] {
		rows, err := experiments.Fig7a(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderOverheads(os.Stdout, "Fig 7a / Experiment 1: overheads vs task executable (SuperMIC, 1x1x16, 300 s)", rows)
	}
	if want["2"] {
		rows, err := experiments.Fig7b(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderOverheads(os.Stdout, "Fig 7b / Experiment 2: overheads vs task duration (SuperMIC, 1x1x16, sleep)", rows)
	}
	if want["3"] {
		rows, err := experiments.Fig7c(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderOverheads(os.Stdout, "Fig 7c / Experiment 3: overheads vs CI (1x1x16, sleep 100 s)", rows)
	}
	if want["4"] {
		rows, err := experiments.Fig7d(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderOverheads(os.Stdout, "Fig 7d / Experiment 4: overheads vs PST structure (SuperMIC, sleep 100 s)", rows)
	}
	if want["5"] {
		rows, err := experiments.Fig8WeakScaling(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderScaling(os.Stdout, "Fig 8: weak scaling on Titan (1-core 600 s mdrun, cores = tasks)", rows)
	}
	if want["6"] {
		rows, err := experiments.Fig9StrongScaling(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderScaling(os.Stdout, "Fig 9: strong scaling on Titan (8,192 1-core 600 s mdrun tasks)", rows)
	}
	if want["7"] {
		rows, err := experiments.Fig10Seismic(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderFig10(os.Stdout, rows)
	}
	if want["8"] {
		res, err := experiments.Fig11AnEn(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderFig11(os.Stdout, res)
	}
	if want["9"] {
		rows, err := experiments.Fig10Series(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderFig10(os.Stdout, rows)
	}
	if want["10"] {
		tasks := *fig6Tasks
		if *quick {
			tasks = 50000
		}
		rows, err := experiments.Fig6Grid(tasks, nil, nil)
		if err != nil {
			fail(err)
		}
		experiments.RenderFig6(os.Stdout, rows)
	}
	if want["11"] {
		rows, err := experiments.Fig8BatchSweep(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderBatchSweep(os.Stdout, rows)
	}
	if want["12"] {
		tasks := *fig6Tasks
		if *quick {
			tasks = 50000
		}
		var rows []experiments.Fig6Row
		for _, format := range []string{"json", "binary"} {
			r, err := experiments.Fig6Wire(tasks, 64, []int{1, 4}, format)
			if err != nil {
				fail(err)
			}
			rows = append(rows, r...)
		}
		experiments.RenderFig6(os.Stdout, rows)
	}
	if want["13"] {
		rows, err := experiments.Fig8SchedulerSweep(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderSchedulerSweep(os.Stdout, rows)
	}
	if want["14"] {
		rows, err := experiments.Fig10Live(opts)
		if err != nil {
			fail(err)
		}
		experiments.RenderFig10Live(os.Stdout, rows)
	}
	if want["tune"] {
		rec, err := experiments.AutotuneConcurrency(opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nAutotuned operating point (automating the paper's §IV-C1 decision):\n")
		fmt.Printf("  recommended concurrency: %d tasks (%.1fx speedup vs serial)\n",
			rec.Concurrency, rec.SpeedupVsSerial)
		for _, o := range rec.Observations {
			fmt.Printf("  c=%-3d makespan %8.1f s, failure rate %.2f\n",
				o.Concurrency, o.Result.MakespanS, o.FailureRate)
		}
	}
	fmt.Fprintf(os.Stderr, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
