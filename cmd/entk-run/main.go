// Command entk-run executes a PST application described in JSON on a
// simulated computing infrastructure — the command-line face of the public
// entk API. The document format is defined by internal/appjson:
//
//	{
//	  "resource": {"name": "titan", "cores": 64, "walltime_s": 7200},
//	  "task_retries": 2,
//	  "pipelines": [{
//	    "name": "md",
//	    "stages": [{
//	      "name": "sim",
//	      "tasks": [{"name": "replica", "executable": "mdrun",
//	                 "duration_s": 600, "cores": 1, "copies": 16}]
//	    }]
//	  }]
//	}
//
// Run with:
//
//	entk-run -app app.json [-scale 1ms] [-v] [-check]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/entk"
	"repro/internal/appjson"
)

func main() {
	var (
		appPath = flag.String("app", "", "path to the JSON application description (required)")
		scale   = flag.Duration("scale", time.Millisecond, "wall time per virtual second")
		verbose = flag.Bool("v", false, "print per-entity final states")
		timeout = flag.Duration("timeout", 10*time.Minute, "wall-clock execution timeout")
		check   = flag.Bool("check", false, "validate the application description and exit")
	)
	flag.Parse()
	if *appPath == "" {
		fmt.Fprintln(os.Stderr, "entk-run: -app is required (see -h)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*appPath)
	if err != nil {
		fatal(err)
	}
	desc, err := appjson.Parse(raw)
	if err != nil {
		fatal(err)
	}
	if *check {
		pipes, total, err := desc.Build()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid — %d pipelines / %d tasks on %s (%d cores)\n",
			*appPath, len(pipes), total, desc.Resource.Name, desc.Resource.Cores)
		return
	}
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{
			Name:     desc.Resource.Name,
			Cores:    desc.Resource.Cores,
			GPUs:     desc.Resource.GPUs,
			Walltime: desc.Walltime(),
			Queue:    desc.Resource.Queue,
			Project:  desc.Resource.Project,
		},
		TimeScale:   *scale,
		TaskRetries: desc.TaskRetries,
		Seed:        desc.Seed,
	})
	if err != nil {
		fatal(err)
	}
	pipes, total, err := desc.Build()
	if err != nil {
		fatal(err)
	}
	if err := am.AddPipelines(pipes...); err != nil {
		fatal(err)
	}
	fmt.Printf("executing %d pipelines / %d tasks on %s (%d cores)\n",
		len(pipes), total, desc.Resource.Name, desc.Resource.Cores)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	runErr := am.Run(ctx)
	wall := time.Since(start)

	rep := am.Report()
	fmt.Printf("\nrun finished in %v wall time\n", wall.Round(time.Millisecond))
	fmt.Printf("  entk setup:      %8.2f s\n", rep.EnTKSetup)
	fmt.Printf("  entk management: %8.2f s\n", rep.EnTKManagement)
	fmt.Printf("  entk tear-down:  %8.2f s\n", rep.EnTKTeardown)
	fmt.Printf("  rts overhead:    %8.2f s\n", rep.RTSOverhead)
	fmt.Printf("  rts tear-down:   %8.2f s\n", rep.RTSTeardown)
	fmt.Printf("  data staging:    %8.2f s\n", rep.DataStaging)
	fmt.Printf("  task execution:  %8.2f s\n", rep.TaskExecution)

	if *verbose {
		for _, p := range pipes {
			fmt.Printf("pipeline %-24s %s\n", p.Name, p.State())
			for _, s := range p.Stages() {
				fmt.Printf("  stage %-24s %s\n", s.Name, s.State())
				for _, t := range s.Tasks() {
					fmt.Printf("    task %-22s %s (attempts %d, exit %d)\n",
						t.Name, t.State(), t.Attempts(), t.ExitCode())
				}
			}
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "entk-run: %v\n", err)
	os.Exit(1)
}
