// Command entk-run executes a PST application described in JSON on a
// simulated computing infrastructure — the command-line face of the public
// entk API. The document format is defined by internal/appjson:
//
//	{
//	  "resource": {"name": "titan", "cores": 64, "walltime_s": 7200},
//	  "task_retries": 2,
//	  "pipelines": [{
//	    "name": "md",
//	    "stages": [{
//	      "name": "sim",
//	      "tasks": [{"name": "replica", "executable": "mdrun",
//	                 "duration_s": 600, "cores": 1, "copies": 16}]
//	    }]
//	  }]
//	}
//
// Run with:
//
//	entk-run -app app.json [-scale 1ms] [-v] [-check] [-progress] [-cancel name] [-schedulers n] [-autotune]
//
// -progress streams the run's lifecycle transitions live (stage and
// pipeline events, plus task events with -v) and periodic completion
// counts from the run handle's Snapshot. -cancel cancels the named
// pipeline shortly after the run starts — its entities reach terminal
// CANCELED states while sibling pipelines execute to completion.
//
// -journal <dir> makes the run durable: every committed transition lands
// in a segmented journal with periodic snapshots (docs/recovery.md). After
// a crash, -resume with the same -journal directory continues the run
// without re-executing completed tasks.
//
// -agents <addr,addr> executes on remote entk-agent processes instead of an
// in-process runtime system: task batches are shipped over the wire, and
// the post-run summary reports how many tasks finished and whether any
// frames were stranded in flight. -events-listen <addr> serves this run's
// event stream to remote subscribers; a second entk-run invoked with
// -attach <addr> (no -app needed) renders that stream live, ending with the
// server-side drop count for its subscription.
//
// -autotune turns on the live knob controller (docs/autotune.md): a
// per-run goroutine samples queue depths, steal ratios, dispatch latency
// and event drops, and steers the broker batch size and scheduler-pool
// size while the run executes. Knob decisions appear in -progress as
// "knob" events, and the progress line grows a live-knob summary.
//
// -daemon <socket> submits the application to a running entkd service
// instead of executing it in-process: the run shares the daemon's pilot
// pool with other tenants' runs (-tenant names the submitter for fairness
// and quota accounting). -progress streams the daemon's event feed; with
// -journal (any value) the daemon journals the run under its own root.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/entk"
	"repro/internal/appjson"
	"repro/internal/remoterts"
	"repro/internal/vclock"
)

func main() {
	var (
		appPath  = flag.String("app", "", "path to the JSON application description (required)")
		scale    = flag.Duration("scale", time.Millisecond, "wall time per virtual second")
		verbose  = flag.Bool("v", false, "print per-entity final states (with -progress: also task events)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "wall-clock execution timeout")
		check    = flag.Bool("check", false, "validate the application description and exit")
		progress = flag.Bool("progress", false, "stream live lifecycle transitions and progress")
		cancelP  = flag.String("cancel", "", "cancel the named pipeline shortly after start")
		wire     = flag.String("wire", "binary", "control-plane wire format: binary (fast) or json (inspectable messages and journal)")
		scheds   = flag.Int("schedulers", 0, "agent scheduler loops draining the task store (0 = min(GOMAXPROCS, shards), 1 = strict-FIFO single scheduler)")
		autotune = flag.Bool("autotune", false, "enable the live knob controller: steer batch size and scheduler pool from runtime stats (docs/autotune.md)")
		jdir     = flag.String("journal", "", "directory for the durable state journal (segments + snapshots + RTS audit); enables crash recovery")
		resume   = flag.Bool("resume", false, "continue the journaled run found in -journal (completed tasks are not re-executed)")
		dSock    = flag.String("daemon", "", "submit to the entkd service at this unix socket instead of running in-process")
		tenant   = flag.String("tenant", "", "tenant name for daemon submissions (fairness weight and quota accounting)")
		agents   = flag.String("agents", "", "comma-separated entk-agent addresses; run on remote agents instead of an in-process RTS")
		evListen = flag.String("events-listen", "", "serve this run's event stream to remote subscribers on this address")
		attach   = flag.String("attach", "", "attach to a remote run's event stream at this address and render it (no -app needed)")
	)
	flag.Parse()
	if *attach != "" {
		attachRemote(*attach, *verbose, *timeout)
		return
	}
	if *appPath == "" {
		fmt.Fprintln(os.Stderr, "entk-run: -app is required (see -h)")
		os.Exit(2)
	}
	if *resume && *jdir == "" {
		fmt.Fprintln(os.Stderr, "entk-run: -resume requires -journal (see -h)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*appPath)
	if err != nil {
		fatal(err)
	}
	desc, err := appjson.Parse(raw)
	if err != nil {
		fatal(err)
	}
	if *check {
		pipes, total, err := desc.Build()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid — %d pipelines / %d tasks on %s (%d cores)\n",
			*appPath, len(pipes), total, desc.Resource.Name, desc.Resource.Cores)
		return
	}
	if *dSock != "" {
		runViaDaemon(raw, desc, *dSock, *tenant, *jdir != "", *timeout, *progress, *verbose)
		return
	}
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{
			Name:     desc.Resource.Name,
			Cores:    desc.Resource.Cores,
			GPUs:     desc.Resource.GPUs,
			Walltime: desc.Walltime(),
			Queue:    desc.Resource.Queue,
			Project:  desc.Resource.Project,
		},
		TimeScale:        *scale,
		TaskRetries:      desc.TaskRetries,
		Seed:             desc.Seed,
		WireFormat:       *wire,
		SchedulerWorkers: *scheds,
		Tuning:           entk.Tuning{Autotune: entk.Autotune{Enabled: *autotune}},
		JournalDir:       *jdir,
		RemoteAgents:     splitAddrs(*agents),
	})
	if err != nil {
		fatal(err)
	}
	pipes, total, err := desc.Build()
	if err != nil {
		fatal(err)
	}
	if err := am.AddPipelines(pipes...); err != nil {
		fatal(err)
	}
	fmt.Printf("executing %d pipelines / %d tasks on %s (%d cores)\n",
		len(pipes), total, desc.Resource.Name, desc.Resource.Cores)

	// Subscribe before Start so the stream observes the very first
	// transition; the bounded ring means a slow terminal can never stall
	// the scheduler (late events are dropped and counted instead).
	var sub *entk.EventSub
	if *progress {
		kinds := []entk.EventKind{entk.EventStage, entk.EventPipeline}
		if *verbose {
			kinds = append(kinds, entk.EventTask)
		}
		if *autotune {
			kinds = append(kinds, entk.EventKnob)
		}
		sub = am.Subscribe(entk.EventFilter{Kinds: kinds})
	}

	var events *remoterts.EventServer
	if *evListen != "" {
		events, err = remoterts.NewEventServer(*evListen, am.Subscribe)
		if err != nil {
			fatal(err)
		}
		defer events.Close()
		am.AddEventPeerSource(events.PeerStats)
		fmt.Printf("event stream served on %s\n", events.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	var run *entk.Run
	var runErr error
	if *resume {
		run, runErr = am.Resume(ctx, *jdir)
		if runErr == nil {
			ri := am.Core().RecoveryInfo()
			fmt.Printf("resumed from %s: snapshot@%d, %d journal records replayed, %d tasks already done\n",
				*jdir, ri.SnapshotSeq, ri.ReplayedRecords, ri.TasksRecovered)
		}
	} else {
		run, runErr = am.Start(ctx)
	}
	if runErr == nil {
		if *cancelP != "" {
			go cancelByName(run, pipes, *cancelP)
		}
		if sub != nil {
			streamDone := make(chan struct{})
			go func() {
				defer close(streamDone)
				renderEvents(run, sub, *autotune)
			}()
			runErr = run.Wait()
			<-streamDone
			fmt.Printf("event stream: %d dropped (slow-subscriber policy)\n", sub.Dropped())
			renderStoreStats(run.Snapshot().Store)
		} else {
			runErr = run.Wait()
		}
	}
	wall := time.Since(start)

	finalSnap := am.Snapshot()
	if *agents != "" {
		// The smoke harness greps this line: a non-zero stranded count
		// means results were lost between an agent and the manager.
		fmt.Printf("remote run: %d/%d tasks done, stranded frames: %d\n",
			finalSnap.TasksDone, finalSnap.TasksTotal, finalSnap.Utilization.TasksInFlight)
	}
	if *autotune {
		fmt.Printf("autotune: %d knob changes — final batch=%d schedulers=%d, %d event drops\n",
			finalSnap.KnobChanges, finalSnap.LiveBatchSize, finalSnap.LiveSchedulers, finalSnap.EventDrops)
	}
	for _, peer := range finalSnap.EventPeers {
		state := "attached"
		if !peer.Connected {
			state = "detached"
		}
		fmt.Printf("event peer %s: %d sent, %d dropped (%s)\n", peer.Peer, peer.Sent, peer.Dropped, state)
	}

	rep := am.Report()
	fmt.Printf("\nrun finished in %v wall time\n", wall.Round(time.Millisecond))
	fmt.Printf("  entk setup:      %8.2f s\n", rep.EnTKSetup)
	fmt.Printf("  entk management: %8.2f s\n", rep.EnTKManagement)
	fmt.Printf("  entk tear-down:  %8.2f s\n", rep.EnTKTeardown)
	fmt.Printf("  rts overhead:    %8.2f s\n", rep.RTSOverhead)
	fmt.Printf("  rts tear-down:   %8.2f s\n", rep.RTSTeardown)
	fmt.Printf("  data staging:    %8.2f s\n", rep.DataStaging)
	fmt.Printf("  task execution:  %8.2f s\n", rep.TaskExecution)

	if *verbose {
		for _, p := range pipes {
			fmt.Printf("pipeline %-24s %s\n", p.Name, p.State())
			for _, s := range p.Stages() {
				fmt.Printf("  stage %-24s %s\n", s.Name, s.State())
				for _, t := range s.Tasks() {
					fmt.Printf("    task %-22s %s (attempts %d, exit %d)\n",
						t.Name, t.State(), t.Attempts(), t.ExitCode())
				}
			}
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// splitAddrs parses the -agents list.
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// attachRemote subscribes to a remote run's event stream and renders it in
// the same format as -progress, ending with the server-side drop count.
func attachRemote(addr string, verbose bool, timeout time.Duration) {
	kinds := []entk.EventKind{entk.EventStage, entk.EventPipeline}
	if verbose {
		kinds = append(kinds, entk.EventTask)
	}
	es, err := remoterts.AttachEvents(addr, entk.EventFilter{Kinds: kinds}, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	defer es.Close()
	fmt.Printf("attached to %s\n", addr)
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-es.C():
			if !ok {
				if es.Ended() {
					fmt.Printf("event stream ended: %d dropped server-side (slow-subscriber policy)\n", es.Dropped())
				} else {
					fmt.Println("event stream ended: connection lost")
				}
				return
			}
			vsec := ev.VTime.Sub(vclock.Epoch).Seconds()
			fmt.Printf("[%10.1fs] %-8s %-24s %s -> %s\n", vsec, ev.Kind, ev.Name, ev.From, ev.To)
		case <-deadline:
			fmt.Fprintln(os.Stderr, "entk-run: -attach timed out")
			return
		}
	}
}

// runViaDaemon submits the application to a running entkd service and waits
// for it to finish, optionally streaming the daemon's event feed.
func runViaDaemon(raw []byte, desc *appjson.App, socket, tenant string, journal bool, timeout time.Duration, progress, verbose bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	client, err := entk.Dial(socket)
	if err != nil {
		fatal(err)
	}
	ref, err := client.Submit(ctx, raw, entk.SubmitOptions{Tenant: tenant, Journal: journal})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("submitted %d pipelines to %s as %s (state %s)\n",
		len(desc.Pipelines), socket, ref.ID, ref.State)
	var events <-chan entk.Event
	var stop func()
	if progress {
		kinds := []entk.EventKind{entk.EventStage, entk.EventPipeline}
		if verbose {
			kinds = append(kinds, entk.EventTask)
		}
		events, stop, err = ref.Events(ctx, kinds...)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		if events == nil {
			return
		}
		for ev := range events {
			vsec := ev.VTime.Sub(vclock.Epoch).Seconds()
			fmt.Printf("[%10.1fs] %-8s %-24s %s -> %s\n", vsec, ev.Kind, ev.Name, ev.From, ev.To)
		}
	}()
	waitErr := ref.Wait(ctx)
	<-streamDone
	info, err := ref.Info(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("run %s finished: %s\n", ref.ID, info.State)
	if waitErr != nil {
		fatal(waitErr)
	}
}

// renderEvents prints each lifecycle transition as it commits, with a
// progress line from the run handle's snapshot whenever a stage or
// pipeline reaches a terminal state. With autotune on, knob events arrive
// interleaved and each progress line carries the live knob values.
func renderEvents(run *entk.Run, sub *entk.EventSub, autotune bool) {
	for ev := range sub.C() {
		vsec := ev.VTime.Sub(vclock.Epoch).Seconds()
		fmt.Printf("[%10.1fs] %-8s %-24s %s -> %s\n", vsec, ev.Kind, ev.Name, ev.From, ev.To)
		if ev.Terminal() && ev.Kind != entk.EventTask {
			snap := run.Snapshot()
			fmt.Printf("[%10.1fs] progress  %d/%d tasks done (%d failed, %d canceled), %d/%d cores busy\n",
				vsec, snap.TasksDone, snap.TasksTotal, snap.TasksFailed, snap.TasksCanceled,
				snap.Utilization.CoresBusy, snap.Utilization.CoresTotal)
			if autotune {
				fmt.Printf("[%10.1fs] knobs     batch=%d schedulers=%d (%d changes, %d event drops)\n",
					vsec, snap.LiveBatchSize, snap.LiveSchedulers, snap.KnobChanges, snap.EventDrops)
			}
		}
	}
}

// renderStoreStats summarizes the agent's scheduler pool after a -progress
// run: loop count, per-loop dispatch tallies and shard work-stealing.
func renderStoreStats(st entk.StoreStats) {
	if st.Schedulers == 0 {
		return
	}
	var pulls, dispatched uint64
	for _, n := range st.SchedulerPulls {
		pulls += n
	}
	for _, n := range st.SchedulerDispatches {
		dispatched += n
	}
	fmt.Printf("scheduler pool: %d loops over %d store shards — %d pulls (%d steals), %d tasks dispatched\n",
		st.Schedulers, st.Shards, pulls, st.Steals, dispatched)
}

// cancelByName cancels the pipeline with the given name once it has tasks
// in flight, demonstrating partial cancellation: the pipeline lands in
// CANCELED while its siblings run to completion.
func cancelByName(run *entk.Run, pipes []*entk.Pipeline, name string) {
	for _, p := range pipes {
		if p.Name != name {
			continue
		}
		time.Sleep(50 * time.Millisecond)
		if err := run.CancelPipeline(p.UID); err != nil {
			fmt.Fprintf(os.Stderr, "entk-run: cancel %s: %v\n", name, err)
		} else {
			fmt.Printf("canceled pipeline %q (siblings keep running)\n", name)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "entk-run: -cancel: no pipeline named %q\n", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "entk-run: %v\n", err)
	os.Exit(1)
}
