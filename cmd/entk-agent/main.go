// Command entk-agent hosts a pilot runtime system behind a network
// listener, the compute-node half of the networked control plane
// (docs/remote.md). A manager started with entk-run -agents (or an
// entk.AppConfig with RemoteAgents) connects, hands the agent task batches
// over internal/transport frames, and receives results and periodic
// capacity reports back.
//
//	entk-agent -listen tcp:127.0.0.1:0 [-resource titan] [-cores 64] [-scale 1ms]
//
// The agent prints "entk-agent: listening on <addr>" once ready — with an
// ephemeral port, parse that line to learn the bound address. One manager
// is served at a time: a new connection purges the running RTS instance
// (discarding its in-flight tasks) and builds a fresh one, so a failed-over
// manager can reconnect without risking double execution. -audit journals
// every RTS incarnation's store to <dir>/rts-audit-NNN.log for post-run
// exactly-once verification.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/hpc"
	"repro/internal/remoterts"
	"repro/internal/rts"
	"repro/internal/saga"
	"repro/internal/vclock"
	"repro/internal/workload"
)

func main() {
	var (
		listen    = flag.String("listen", "tcp:127.0.0.1:0", "listen address (tcp:host:port or unix:/path; port 0 picks an ephemeral port)")
		name      = flag.String("name", "", "agent name reported in handshakes (default: the listen address)")
		resource  = flag.String("resource", "titan", "CI whose batch system and cost model this agent simulates")
		cores     = flag.Int("cores", 64, "pilot size in cores")
		gpus      = flag.Int("gpus", 0, "pilot GPU count (0 = CI default per node)")
		walltime  = flag.Duration("walltime", 2*time.Hour, "pilot walltime (virtual)")
		scale     = flag.Duration("scale", time.Millisecond, "wall time per virtual second")
		scheds    = flag.Int("schedulers", 0, "agent scheduler loops (0 = auto, 1 = strict FIFO)")
		audit     = flag.String("audit", "", "directory for per-incarnation RTS audit logs (exactly-once verification)")
		heartbeat = flag.Duration("heartbeat", time.Second, "stats/keepalive interval (wall clock)")
		seed      = flag.Int64("seed", 0, "seed for the agent's stochastic models")
		compute   = flag.Bool("compute", false, "execute real workload kernels instead of modelled durations")
	)
	flag.Parse()

	clock := vclock.NewScaled(*scale)
	spec, err := hpc.LookupSpec(*resource)
	if err != nil {
		fatal(err)
	}
	// Same GPU defaulting as the in-process stack: a pilot brings the CI's
	// per-node GPU inventory for every allocated node.
	if *gpus == 0 && spec.GPUsPerNode > 0 {
		nodes := (*cores + spec.CoresPerNode - 1) / spec.CoresPerNode
		*gpus = nodes * spec.GPUsPerNode
	}
	cluster, err := hpc.NewCluster(spec, clock)
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	session := saga.NewSession()
	if err := session.Register(saga.NewClusterAdapter(cluster)); err != nil {
		fatal(err)
	}
	transfers, err := saga.NewTransferService(clock)
	if err != nil {
		fatal(err)
	}
	session.SetTransferService(transfers)

	fsSpec := fsim.XSEDEShared()
	if *resource == "titan" {
		fsSpec = fsim.OLCFLustre()
	}
	fs, err := fsim.New(fsSpec, clock, *seed)
	if err != nil {
		fatal(err)
	}

	base := rts.Config{
		Clock:      clock,
		Session:    session,
		Registry:   workload.NewRegistry(),
		FS:         fs,
		Compute:    *compute,
		Seed:       *seed,
		Schedulers: *scheds,
	}
	// Each manager connection builds a fresh RTS incarnation; with -audit,
	// each incarnation journals its store separately so the disjointness of
	// their push sets can be checked after the run.
	var incarnation atomic.Int64
	factory := func(res core.ResourceDesc) (core.RTS, error) {
		cfg := base
		cfg.Resource = res
		if *audit != "" {
			n := incarnation.Add(1)
			cfg.StorePath = filepath.Join(*audit, fmt.Sprintf("rts-audit-%03d.log", n))
		}
		return rts.New(cfg)
	}

	agentName := *name
	if agentName == "" {
		agentName = *listen
	}
	agent, err := remoterts.NewAgent(remoterts.AgentConfig{
		Addr:    *listen,
		Name:    agentName,
		Factory: factory,
		Resource: core.ResourceDesc{
			Resource: *resource,
			Cores:    *cores,
			GPUs:     *gpus,
			Walltime: *walltime,
		},
		HeartbeatInterval: *heartbeat,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("entk-agent: listening on %s (%s, %d cores, %d gpus)\n",
		agent.Addr(), *resource, *cores, *gpus)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("entk-agent: shutting down")
		agent.Close()
	}()
	agent.Wait()
	fmt.Printf("entk-agent: served %d task results over %d RTS incarnations\n",
		agent.Served(), agent.Incarnations())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "entk-agent: %v\n", err)
	os.Exit(1)
}
