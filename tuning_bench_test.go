// Live-autotuning benchmarks: the disabled/enabled overhead contract and
// the bursty-workload ablation. Both are in the BENCH_GATE regression
// subset (docs/ci.md, docs/autotune.md). The file name sorts after every
// other *_bench_test.go on purpose: these run whole applications, and
// running them before the broker micro-benchmarks shifts those numbers on
// a loaded machine — the gate's measurement order must stay stable across
// baselines.
package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/entk"
	"repro/internal/experiments"
)

// BenchmarkAutotuneOverhead measures the controller's steady-state cost on
// a run whose knobs never move. "off" is the default path: a collapsed-
// bounds handle and no controller goroutine. "on-steady" enables the
// controller with bounds collapsed onto the starting point, so it samples
// the run's counters on every interval but can never commit a change —
// pure control-loop overhead. The contract (docs/autotune.md): on-steady
// within 3% of off.
func BenchmarkAutotuneOverhead(b *testing.B) {
	const tasks = 1024
	for _, mode := range []struct {
		name string
		auto entk.Autotune
	}{
		{"off", entk.Autotune{}},
		{"on-steady", entk.Autotune{
			Enabled:       true,
			MinBatch:      benchBatchSize,
			MaxBatch:      benchBatchSize,
			MinSchedulers: 1,
			MaxSchedulers: 1,
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				am, err := entk.NewAppManager(entk.AppConfig{
					Resource:  entk.Resource{Name: "supermic", Cores: tasks, Walltime: 72 * time.Hour},
					TimeScale: 2 * time.Microsecond,
					HostName:  "null",
					Tuning: entk.Tuning{
						BatchSize:        benchBatchSize,
						SchedulerWorkers: 1,
						Autotune:         mode.auto,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				pipe := entk.NewPipeline("bench")
				stage := entk.NewStage("s")
				for k := 0; k < tasks; k++ {
					t := entk.NewTask(fmt.Sprintf("t%04d", k))
					t.Executable = "sleep"
					t.Duration = time.Second
					stage.AddTask(t) //nolint:errcheck
				}
				pipe.AddStage(stage) //nolint:errcheck
				if err := am.AddPipelines(pipe); err != nil {
					b.Fatal(err)
				}
				if err := am.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				if snap := am.Snapshot(); snap.KnobChanges != 0 {
					b.Fatalf("collapsed-bounds controller committed %d changes", snap.KnobChanges)
				}
			}
			b.ReportMetric(float64(tasks*b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// BenchmarkAblationAutotune runs the quick-mode bursty workload of
// experiment 14 at three operating points: the worst static setting
// (per-message batching), the best static setting, and the controller
// climbing live from the worst. Wall time is the gated number; the
// virtual-time tasks/s figure of merit is reported as a metric.
func BenchmarkAblationAutotune(b *testing.B) {
	opts := quickOpts()
	for _, setting := range []struct {
		name string
		tun  entk.Tuning
		auto bool
	}{
		{"static-worst", entk.Tuning{BatchSize: 1, SchedulerWorkers: 1}, false},
		{"static-best", entk.Tuning{BatchSize: 256, SchedulerWorkers: 1}, false},
		{"autotuned", entk.Tuning{
			BatchSize:        1,
			SchedulerWorkers: 1,
			Autotune: entk.Autotune{
				Enabled:  true,
				Interval: 500 * time.Millisecond,
				MinBatch: 1,
				MaxBatch: 4096,
			},
		}, true},
	} {
		b.Run(setting.name, func(b *testing.B) {
			var virtualTasksPerSec float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.Fig10LiveOne(opts, setting.tun, setting.auto)
				if err != nil {
					b.Fatal(err)
				}
				if setting.auto && row.KnobChanges == 0 {
					b.Fatal("autotuned run committed no knob changes")
				}
				virtualTasksPerSec = row.TasksPerSec
			}
			b.ReportMetric(virtualTasksPerSec, "vtasks/s")
		})
	}
}
