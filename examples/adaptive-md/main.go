// Adaptive ensemble-MD example: the class of biomolecular workloads the
// paper's introduction motivates ("a shift from running single long running
// tasks towards multiple shorter running tasks").
//
// The application runs rounds of concurrent MD simulations; after each
// round, an analysis task inspects the ensemble and a Stage PostExec hook
// decides — at runtime — whether to extend the pipeline with another round.
// This is EnTK's adaptivity: "branching events can be specified as tasks
// where a decision is made about the runtime flow" (§II-B1).
//
// The example drives the run through the non-blocking Start/Wait handle:
// a typed event subscription renders stage transitions live, and after the
// first analysis round the PostExec hook *pauses* the pipeline through the
// run handle (the paper's suspension primitive) — as a real adaptive
// application would while an out-of-band decision service deliberates —
// then resumes it from a second goroutine.
//
//	go run ./examples/adaptive-md
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/entk"
)

const (
	replicas  = 8
	maxRounds = 5
)

func main() {
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{
			Name:     "comet",
			Cores:    replicas,
			Walltime: 12 * time.Hour,
		},
		TimeScale:   200 * time.Microsecond,
		TaskRetries: 2,
		Compute:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	pipeline := entk.NewPipeline("adaptive-md")
	var round int32
	// The run handle is handed to the PostExec hook through a 1-slot
	// channel: the hook blocks until Start has returned, so the pause
	// branch can never be skipped by a scheduling race.
	runCh := make(chan *entk.Run, 1)
	resumed := make(chan struct{})

	// "Converged" when the decision task has seen enough rounds; a real
	// application would measure, e.g., conformational-space coverage.
	var addRound func() error
	mdStage := func(n int32) *entk.Stage {
		s := entk.NewStage(fmt.Sprintf("md-round-%d", n))
		for i := 0; i < replicas; i++ {
			t := entk.NewTask(fmt.Sprintf("replica-%d-%02d", n, i))
			t.Executable = "mdrun"
			t.Arguments = []string{"-nsteps", "40"}
			t.Duration = 600 * time.Second
			t.CPUReqs = entk.CPUReqs{Processes: 1}
			s.AddTask(t) //nolint:errcheck
		}
		return s
	}
	analysisStage := func(n int32) *entk.Stage {
		s := entk.NewStage(fmt.Sprintf("analysis-%d", n))
		t := entk.NewTask(fmt.Sprintf("msm-build-%d", n))
		t.Executable = "sleep"
		t.Duration = 60 * time.Second
		s.AddTask(t) //nolint:errcheck
		s.PostExec = addRound
		return s
	}
	addRound = func() error {
		n := atomic.AddInt32(&round, 1)
		if n >= maxRounds {
			fmt.Printf("round %d: converged, stopping\n", n)
			return nil
		}
		fmt.Printf("round %d: not converged, extending the pipeline\n", n)
		if err := pipeline.AddStage(mdStage(n)); err != nil {
			return err
		}
		if err := pipeline.AddStage(analysisStage(n)); err != nil {
			return err
		}
		if n == 1 {
			// Suspend at this stage boundary while an (imagined) external
			// decision service deliberates; resume shortly after. Pause and
			// Resume are committed by the Synchronizer like any other
			// transition, so the event stream shows both.
			r := <-runCh
			runCh <- r
			if err := r.Pause(pipeline.UID); err != nil {
				return err
			}
			fmt.Println("round 1: pipeline paused pending external decision")
			go func() {
				time.Sleep(30 * time.Millisecond)
				if err := r.Resume(pipeline.UID); err != nil {
					log.Printf("resume: %v", err)
				}
				fmt.Println("external decision arrived: pipeline resumed")
				close(resumed)
			}()
		}
		return nil
	}

	if err := pipeline.AddStage(mdStage(0)); err != nil {
		log.Fatal(err)
	}
	if err := pipeline.AddStage(analysisStage(0)); err != nil {
		log.Fatal(err)
	}
	if err := am.AddPipelines(pipeline); err != nil {
		log.Fatal(err)
	}

	// Live observability: stage and pipeline transitions as they commit.
	sub := am.Subscribe(entk.EventFilter{
		Kinds: []entk.EventKind{entk.EventStage, entk.EventPipeline},
	})
	go func() {
		for ev := range sub.C() {
			fmt.Printf("  event: %-8s %-12s %s -> %s\n", ev.Kind, ev.Name, ev.From, ev.To)
		}
	}()

	r, err := am.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	runCh <- r
	if err := r.Wait(); err != nil {
		log.Fatal(err)
	}
	<-resumed

	snap := r.Snapshot()
	fmt.Printf("\npipeline %s after %d stages (%d MD rounds), %d/%d tasks done\n",
		pipeline.State(), pipeline.StageCount(), atomic.LoadInt32(&round),
		snap.TasksDone, snap.TasksTotal)
	rep := am.Report()
	fmt.Printf("execution window: %.0f virtual s (sequential rounds of concurrent replicas)\n",
		rep.TaskExecution)
}
