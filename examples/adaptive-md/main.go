// Adaptive ensemble-MD example: the class of biomolecular workloads the
// paper's introduction motivates ("a shift from running single long running
// tasks towards multiple shorter running tasks").
//
// The application runs rounds of concurrent MD simulations; after each
// round, an analysis task inspects the ensemble and a Stage PostExec hook
// decides — at runtime — whether to extend the pipeline with another round.
// This is EnTK's adaptivity: "branching events can be specified as tasks
// where a decision is made about the runtime flow" (§II-B1).
//
//	go run ./examples/adaptive-md
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/entk"
)

const (
	replicas  = 8
	maxRounds = 5
)

func main() {
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{
			Name:     "comet",
			Cores:    replicas,
			Walltime: 12 * time.Hour,
		},
		TimeScale:   200 * time.Microsecond,
		TaskRetries: 2,
		Compute:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	pipeline := entk.NewPipeline("adaptive-md")
	var round int32
	// "Converged" when the decision task has seen enough rounds; a real
	// application would measure, e.g., conformational-space coverage.
	var addRound func() error
	mdStage := func(n int32) *entk.Stage {
		s := entk.NewStage(fmt.Sprintf("md-round-%d", n))
		for i := 0; i < replicas; i++ {
			t := entk.NewTask(fmt.Sprintf("replica-%d-%02d", n, i))
			t.Executable = "mdrun"
			t.Arguments = []string{"-nsteps", "40"}
			t.Duration = 600 * time.Second
			t.CPUReqs = entk.CPUReqs{Processes: 1}
			s.AddTask(t) //nolint:errcheck
		}
		return s
	}
	analysisStage := func(n int32) *entk.Stage {
		s := entk.NewStage(fmt.Sprintf("analysis-%d", n))
		t := entk.NewTask(fmt.Sprintf("msm-build-%d", n))
		t.Executable = "sleep"
		t.Duration = 60 * time.Second
		s.AddTask(t) //nolint:errcheck
		s.PostExec = addRound
		return s
	}
	addRound = func() error {
		n := atomic.AddInt32(&round, 1)
		if n >= maxRounds {
			fmt.Printf("round %d: converged, stopping\n", n)
			return nil
		}
		fmt.Printf("round %d: not converged, extending the pipeline\n", n)
		if err := pipeline.AddStage(mdStage(n)); err != nil {
			return err
		}
		return pipeline.AddStage(analysisStage(n))
	}

	if err := pipeline.AddStage(mdStage(0)); err != nil {
		log.Fatal(err)
	}
	if err := pipeline.AddStage(analysisStage(0)); err != nil {
		log.Fatal(err)
	}
	if err := am.AddPipelines(pipeline); err != nil {
		log.Fatal(err)
	}
	if err := am.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npipeline %s after %d stages (%d MD rounds)\n",
		pipeline.State(), pipeline.StageCount(), atomic.LoadInt32(&round))
	rep := am.Report()
	fmt.Printf("execution window: %.0f virtual s (sequential rounds of concurrent replicas)\n",
		rep.TaskExecution)
}
