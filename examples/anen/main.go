// Analog-ensemble example: the paper's second use case (§III-B).
//
// A synthetic NAM-like forecast archive is generated; then the Adaptive
// Unstructured Analog (AUA) algorithm and the status-quo random-selection
// baseline each predict the analysis field from the same initial random
// locations and the same location budget. AUA concentrates its samples
// where the field has sharp gradients, producing a lower final error — the
// paper's Fig 11 result.
//
//	go run ./examples/anen
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/anen"
)

func main() {
	gen := anen.DefaultGenConfig()
	ds, err := anen.Generate(gen, 2026)
	if err != nil {
		log.Fatal(err)
	}
	cfg := anen.DefaultAUAConfig()
	fmt.Printf("domain: %dx%d = %d pixels, budget %d locations (%.2f%%)\n",
		gen.W, gen.H, ds.Locations(), cfg.Budget,
		100*float64(cfg.Budget)/float64(ds.Locations()))

	// Both methods start from the same random locations (as in the paper).
	seedRng := rand.New(rand.NewSource(7))
	seeds := anen.SeedLocations(ds, cfg.Seeds, seedRng)

	aua, err := anen.RunAUAFromSeeds(ds, cfg, seeds, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	rnd, err := anen.RunRandomFromSeeds(ds, cfg, seeds, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %10s\n", "", "AUA", "random")
	fmt.Printf("%-22s %10d %10d\n", "locations computed", len(aua.Locations), len(rnd.Locations))
	fmt.Printf("%-22s %10d %10d\n", "iterations", aua.Iterations, rnd.Iterations)
	fmt.Printf("%-22s %10.4f %10.4f\n", "final RMSE", aua.RMSE, rnd.RMSE)

	fmt.Println("\nconvergence (RMSE per iteration):")
	fmt.Printf("  AUA:    ")
	for _, e := range aua.ErrHistory {
		fmt.Printf(" %.4f", e)
	}
	fmt.Printf("\n  random: ")
	for _, e := range rnd.ErrHistory {
		fmt.Printf(" %.4f", e)
	}
	fmt.Println()
	if aua.RMSE < rnd.RMSE {
		fmt.Println("\nAUA beats random selection at the same budget (paper Fig 11).")
	} else {
		fmt.Println("\n(random won this world — rerun with another seed; AUA wins on average)")
	}
}
