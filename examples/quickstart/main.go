// Quickstart: the smallest complete EnTK application — one pipeline with a
// simulation stage (16 concurrent tasks) followed by an analysis stage,
// executed on a simulated XSEDE SuperMIC pilot.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/entk"
)

func main() {
	// Describe the application with the PST model.
	pipeline := entk.NewPipeline("quickstart")

	simulation := entk.NewStage("simulation")
	for i := 0; i < 16; i++ {
		t := entk.NewTask(fmt.Sprintf("md-%02d", i))
		t.Executable = "mdrun"
		t.Arguments = []string{"-nsteps", "50"}
		t.Duration = 300 * time.Second // nominal runtime on the CI
		t.CPUReqs = entk.CPUReqs{Processes: 1}
		if err := simulation.AddTask(t); err != nil {
			log.Fatal(err)
		}
	}
	if err := pipeline.AddStage(simulation); err != nil {
		log.Fatal(err)
	}

	analysis := entk.NewStage("analysis")
	agg := entk.NewTask("aggregate")
	agg.Executable = "sleep"
	agg.Duration = 30 * time.Second
	if err := analysis.AddTask(agg); err != nil {
		log.Fatal(err)
	}
	if err := pipeline.AddStage(analysis); err != nil {
		log.Fatal(err)
	}

	// Acquire resources and execute. One virtual second costs 1 ms of wall
	// time, so the 330 s workflow completes in well under a second.
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{
			Name:     "supermic",
			Cores:    16,
			Walltime: time.Hour,
		},
		TimeScale:   time.Millisecond,
		TaskRetries: 2,
		Compute:     true, // run the real (small) MD kernel inside each task
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := am.AddPipelines(pipeline); err != nil {
		log.Fatal(err)
	}
	if err := am.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline state: %s\n", pipeline.State())
	for _, s := range pipeline.Stages() {
		done := 0
		for _, t := range s.Tasks() {
			if t.State() == entk.TaskDone {
				done++
			}
		}
		fmt.Printf("  stage %-12s %s (%d/%d tasks done)\n",
			s.Name, s.State(), done, s.TaskCount())
	}
	rep := am.Report()
	fmt.Printf("task execution window: %.1f virtual seconds\n", rep.TaskExecution)
	fmt.Printf("EnTK overheads: setup %.2fs, management %.2fs, tear-down %.2fs\n",
		rep.EnTKSetup, rep.EnTKManagement, rep.EnTKTeardown)
}
