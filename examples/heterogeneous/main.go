// Heterogeneous execution example: the paper's future-work capability (i),
// "dynamic mapping of tasks onto heterogeneous resources", applied to the
// seismic use case's stated need: "we need to interleave simulation tasks
// with data-processing tasks, each requiring respectively leadership-scale
// systems and moderately sized clusters" (§III-A).
//
// One EnTK application runs across two pilots at once — a large one on
// Titan for the forward simulations, a small one on Comet for the data
// processing — with tasks pinned by Tags["resource"].
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/entk"
	"repro/internal/seismic"
	"repro/internal/workload"
)

func main() {
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{ // leadership-scale pilot
			Name:     "titan",
			Cores:    4 * 6144, // 4 concurrent forward simulations
			Walltime: 2 * time.Hour,
		},
		ExtraResources: []entk.Resource{{ // cluster-scale pilot
			Name:     "comet",
			Cores:    48,
			Walltime: 12 * time.Hour,
		}},
		TimeScale:   500 * time.Microsecond,
		TaskRetries: 3,
		Kernels:     []workload.Kernel{seismic.Kernel{}},
	})
	if err != nil {
		log.Fatal(err)
	}

	const events = 4
	pipe := entk.NewPipeline("seismic-iteration")

	forward := entk.NewStage("forward-simulation")
	for e := 0; e < events; e++ {
		t := entk.NewTask(fmt.Sprintf("fwd-eq%02d", e))
		t.Executable = "specfem"
		t.Duration = 180 * time.Second
		t.CPUReqs = entk.CPUReqs{Processes: 6144}
		t.Tags = map[string]string{"resource": "titan"}
		forward.AddTask(t) //nolint:errcheck
	}
	pipe.AddStage(forward) //nolint:errcheck

	process := entk.NewStage("data-processing")
	for e := 0; e < events; e++ {
		t := entk.NewTask(fmt.Sprintf("proc-eq%02d", e))
		t.Executable = "sleep"
		t.Duration = 45 * time.Second
		t.CPUReqs = entk.CPUReqs{Processes: 12}
		t.Tags = map[string]string{"resource": "comet"}
		process.AddTask(t) //nolint:errcheck
	}
	pipe.AddStage(process) //nolint:errcheck

	if err := am.AddPipelines(pipe); err != nil {
		log.Fatal(err)
	}
	if err := am.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline %s\n", pipe.State())
	for _, s := range pipe.Stages() {
		fmt.Printf("  stage %-20s %s\n", s.Name, s.State())
		for _, t := range s.Tasks() {
			fmt.Printf("    %-12s on %-6s  %s\n", t.Name, t.Tags["resource"], t.State())
		}
	}
	rep := am.Report()
	fmt.Printf("\nexecution window: %.0f virtual s — simulations on Titan, processing on Comet,\n", rep.TaskExecution)
	fmt.Println("one application, no manual hand-off between machines.")
}
