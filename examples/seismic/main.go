// Seismic inversion example: the paper's first use case (§III-A).
//
// Part 1 executes the production-shaped forward-simulation ensemble on a
// simulated Titan: 8 earthquakes, each a 384-node Specfem task, run at a
// concurrency of 4 with automatic resubmission of failed tasks.
//
// Part 2 runs a real (laptop-scale) adjoint tomography loop with the 2-D
// acoustic solver: forward simulations against a hidden true model, misfit
// evaluation, adjoint kernels and model updates — showing the misfit
// decrease that the production workflow achieves on Titan.
//
//	go run ./examples/seismic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/entk"
	"repro/internal/seismic"
	"repro/internal/workload"
)

func main() {
	runEnsembleOnTitan()
	runMiniInversion()
}

func runEnsembleOnTitan() {
	fmt.Println("=== Part 1: forward-simulation ensemble on (simulated) Titan ===")
	params := seismic.ProductionForwardParams()
	const events = 8
	const concurrency = 4

	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{
			Name:     "titan",
			Cores:    concurrency * params.Cores, // 4 x 384 nodes
			Walltime: 2 * time.Hour,
		},
		TimeScale:   500 * time.Microsecond,
		TaskRetries: 10,
		Seed:        42,
		Kernels:     []workload.Kernel{seismic.Kernel{}},
	})
	if err != nil {
		log.Fatal(err)
	}
	pipes := seismic.NewForwardEnsemble(events, params)
	if err := am.AddPipelines(pipes...); err != nil {
		log.Fatal(err)
	}
	if err := am.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	attempts := 0
	for _, p := range pipes {
		for _, s := range p.Stages() {
			for _, t := range s.Tasks() {
				attempts += t.Attempts()
			}
		}
	}
	rep := am.Report()
	fmt.Printf("%d earthquakes simulated at concurrency %d: makespan %.0f virtual s, %d attempts\n\n",
		events, concurrency, rep.TaskExecution, attempts)
}

func runMiniInversion() {
	fmt.Println("=== Part 2: adjoint tomography with the 2-D acoustic solver ===")
	trueModel := seismic.NewModel(48, 48, 10, 1500)
	trueModel.AddGaussianAnomaly(24, 24, 6, 180) // the structure to image
	current := seismic.NewModel(48, 48, 10, 1500)

	events := []seismic.Source{
		{IX: 12, IZ: 6, Freq: 10},
		{IX: 24, IZ: 6, Freq: 10},
		{IX: 36, IZ: 6, Freq: 10},
	}
	receivers := []seismic.Receiver{
		{IX: 6, IZ: 4}, {IX: 14, IZ: 4}, {IX: 22, IZ: 4},
		{IX: 30, IZ: 4}, {IX: 38, IZ: 4}, {IX: 44, IZ: 4},
	}
	cfg := seismic.SimConfig{NT: 180, DT: 0.004, DampWidth: 6, SnapshotEvery: 3}

	model := current
	for iter := 1; iter <= 4; iter++ {
		next, misfit, err := seismic.InvertStep(model, trueModel, events, receivers, cfg, 0.03)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %d: waveform misfit %.3e\n", iter, misfit)
		model = next
	}
	fmt.Println("misfit decreases as the model converges toward the true anomaly")
}
