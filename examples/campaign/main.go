// Campaign: a multi-phase computational campaign built from the paper's
// extended PST description — "dependencies among groups of pipelines in
// terms of lists of sets of pipelines" (§II-B1) — combined with the SAGA
// data-management protocols (§II-D) and the external state database
// (§II-B4).
//
// The campaign has three phases:
//
//  1. Generation — four independent simulation pipelines, each pulling its
//     configuration from a remote archive over scp and pushing a large
//     trajectory to tape over Globus Online.
//  2. Aggregation — one pipeline that merges the four trajectories.
//  3. Analysis — two pipelines (statistics, visualization) over the merged
//     data, which can again run concurrently.
//
// Every state transition is mirrored to an external state database; the
// program prints the database's view of the campaign afterwards, the
// "postmortem analysis" of the paper's failure model.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/entk"
)

func simulationPipeline(id int) *entk.Pipeline {
	p := entk.NewPipeline(fmt.Sprintf("generation-%d", id))
	run := entk.NewStage("simulate")
	t := entk.NewTask(fmt.Sprintf("md-%d", id))
	t.Executable = "mdrun"
	t.Duration = 600 * time.Second
	t.CPUReqs = entk.CPUReqs{Processes: 4}
	t.InputStaging = []entk.StagingDirective{{
		Source:   fmt.Sprintf("archive:/configs/run-%d.tpr", id),
		Target:   "run.tpr",
		Action:   entk.StagingTransfer,
		Bytes:    25 << 20, // 25 MB binary input
		Protocol: "scp",
	}}
	t.OutputStaging = []entk.StagingDirective{{
		Source:   "traj.trr",
		Target:   fmt.Sprintf("tape:/campaign/traj-%d.trr", id),
		Action:   entk.StagingTransfer,
		Bytes:    1 << 30, // 1 GB trajectory: Globus wins at this size
		Protocol: "globus",
	}}
	if err := run.AddTask(t); err != nil {
		log.Fatal(err)
	}
	if err := p.AddStage(run); err != nil {
		log.Fatal(err)
	}
	return p
}

func singleTaskPipeline(name, executable string, d time.Duration, cores int) *entk.Pipeline {
	p := entk.NewPipeline(name)
	s := entk.NewStage(name)
	t := entk.NewTask(name)
	t.Executable = executable
	t.Duration = d
	t.CPUReqs = entk.CPUReqs{Processes: cores}
	if err := s.AddTask(t); err != nil {
		log.Fatal(err)
	}
	if err := p.AddStage(s); err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	// Phase 1: four concurrent simulation pipelines.
	var generation []*entk.Pipeline
	for i := 0; i < 4; i++ {
		generation = append(generation, simulationPipeline(i))
	}
	// Phase 2: one aggregation pipeline.
	aggregation := []*entk.Pipeline{
		singleTaskPipeline("aggregate", "sleep", 120*time.Second, 8),
	}
	// Phase 3: two concurrent analysis pipelines.
	analysis := []*entk.Pipeline{
		singleTaskPipeline("statistics", "sleep", 90*time.Second, 4),
		singleTaskPipeline("visualization", "sleep", 60*time.Second, 2),
	}

	db := entk.NewStateDB()
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource: entk.Resource{
			Name:     "comet",
			Cores:    24,
			Walltime: 4 * time.Hour,
		},
		TimeScale:   time.Millisecond,
		TaskRetries: 2,
		StateStore:  db,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The list-of-sets description: generation, then aggregation, then
	// analysis. Pipelines inside each set run concurrently.
	if err := am.AddPipelineGroups(generation, aggregation, analysis); err != nil {
		log.Fatal(err)
	}

	start := am.Clock().Now()
	if err := am.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	makespan := am.Clock().Now().Sub(start)

	fmt.Println("campaign finished")
	fmt.Printf("  virtual makespan: %.0f s ", makespan.Seconds())
	fmt.Println("(≈600 s generation + 120 s aggregation + 90 s analysis + overheads)")
	for _, group := range [][]*entk.Pipeline{generation, aggregation, analysis} {
		for _, p := range group {
			fmt.Printf("  %-14s %s\n", p.Name, p.State())
		}
	}

	rep := am.Report()
	fmt.Printf("data staging (scp + globus transfers): %.1f virtual seconds\n", rep.DataStaging)

	// Postmortem analysis from the external state database (§II-B4).
	fmt.Printf("state database: %d commits across %d tasks, %d stages, %d pipelines\n",
		db.Commits(), len(db.UIDs("task")), len(db.UIDs("stage")), len(db.UIDs("pipeline")))
	states, err := db.LoadTaskStates()
	if err != nil {
		log.Fatal(err)
	}
	done := 0
	for _, st := range states {
		if st == string(entk.TaskDone) {
			done++
		}
	}
	fmt.Printf("  tasks recorded DONE: %d/%d\n", done, len(states))
}
