#!/usr/bin/env bash
# Networked-control-plane end-to-end smoke test (also run by CI):
#
#   1. build entk-agent and entk-run
#   2. start two entk-agent processes on ephemeral localhost TCP ports
#   3. run the shipped example application through both agents from one
#      manager (entk-run -agents)
#   4. assert every task reached DONE with zero stranded frames
#   5. shut the agents down and assert they served a sane result count
#
# Exits nonzero on any failed step. Runs in a few seconds: the example app
# is ~780 virtual seconds and everything runs at 1ms per virtual second.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
cleanup() {
    [ -n "${A1PID:-}" ] && kill "$A1PID" 2>/dev/null || true
    [ -n "${A2PID:-}" ] && kill "$A2PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building"
go build -o "$TMP/entk-agent" ./cmd/entk-agent
go build -o "$TMP/entk-run" ./cmd/entk-run

# Each agent simulates half of the example app's 64-core claim. The pilot
# walltime is virtual — 72h at 1ms/s is a ~260s wall-clock budget, ample
# margin over the run on a loaded CI runner.
start_agent() { # $1=name $2=log
    "$TMP/entk-agent" -listen tcp:127.0.0.1:0 -name "$1" \
        -resource supermic -cores 32 -walltime 72h -scale 1ms >"$2" 2>&1 &
}

wait_addr() { # $1=log $2=pid -> prints bound address
    for _ in $(seq 1 100); do
        if addr=$(grep -o 'listening on [^ ]*' "$1" | head -1 | cut -d' ' -f3) && [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        kill -0 "$2" 2>/dev/null || { echo "agent died during startup:" >&2; cat "$1" >&2; return 1; }
        sleep 0.1
    done
    echo "agent never reported its address:" >&2
    cat "$1" >&2
    return 1
}

echo "== starting two agents"
start_agent smoke-a "$TMP/a1.log"; A1PID=$!
start_agent smoke-b "$TMP/a2.log"; A2PID=$!
ADDR1=$(wait_addr "$TMP/a1.log" "$A1PID")
ADDR2=$(wait_addr "$TMP/a2.log" "$A2PID")
echo "   $ADDR1 / $ADDR2"

echo "== running example app across both agents"
OUT=$("$TMP/entk-run" -app cmd/entk-run/example-app.json -agents "$ADDR1,$ADDR2" -scale 1ms)
echo "$OUT"
echo "$OUT" | grep -q "stranded frames: 0" || { echo "frames were stranded in flight"; exit 1; }
DONE_LINE=$(echo "$OUT" | grep "remote run:")
echo "$DONE_LINE" | grep -Eq "remote run: ([0-9]+)/\1 tasks done" || { echo "not every task reached DONE"; exit 1; }

echo "== shutting agents down"
kill -TERM "$A1PID" "$A2PID"
wait "$A1PID" || { echo "agent a exited nonzero:"; cat "$TMP/a1.log"; exit 1; }
wait "$A2PID" || { echo "agent b exited nonzero:"; cat "$TMP/a2.log"; exit 1; }
A1PID=""; A2PID=""

# Both agents must have shipped results (the proxy stripes batches), and
# each should report exactly one RTS incarnation (no failover happened).
for log in "$TMP/a1.log" "$TMP/a2.log"; do
    grep -q "served [1-9][0-9]* task results over 1 RTS incarnations" "$log" || {
        echo "agent served nothing, or failed over, in $log:"; cat "$log"; exit 1; }
done

echo "== remote smoke OK"
