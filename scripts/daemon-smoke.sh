#!/usr/bin/env bash
# entkd end-to-end smoke test (also run by CI):
#
#   1. build entkd and entk-run
#   2. start entkd on a temp unix socket
#   3. submit the shipped example application over the socket
#   4. wait for the run to reach DONE
#   5. SIGTERM the daemon and assert a clean shutdown with zero leaked leases
#
# Exits nonzero on any failed step. Runs in a few seconds: the example app
# is ~780 virtual seconds and the daemon runs at 1ms per virtual second.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
SOCK="$TMP/entkd.sock"
LOG="$TMP/entkd.log"
cleanup() {
    [ -n "${DPID:-}" ] && kill "$DPID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building"
go build -o "$TMP/entkd" ./cmd/entkd
go build -o "$TMP/entk-run" ./cmd/entk-run

echo "== starting entkd on $SOCK"
"$TMP/entkd" -socket "$SOCK" -resource titan -cores 64 -walltime 2h -scale 1ms >"$LOG" 2>&1 &
DPID=$!

for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$DPID" 2>/dev/null || { echo "entkd died during startup:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "entkd never bound $SOCK:"; cat "$LOG"; exit 1; }

echo "== submitting example app"
OUT=$("$TMP/entk-run" -app cmd/entk-run/example-app.json -daemon "$SOCK" -tenant smoke)
echo "$OUT"
echo "$OUT" | grep -q "finished: DONE" || { echo "run did not finish DONE"; exit 1; }

echo "== shutting down"
kill -TERM "$DPID"
wait "$DPID" || { echo "entkd exited nonzero:"; cat "$LOG"; exit 1; }
DPID=""
cat "$LOG"
grep -q "^leaked leases: 0$" "$LOG" || { echo "daemon leaked leases (or never reported)"; exit 1; }

echo "== daemon smoke OK"
