package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/entk"
	"repro/internal/appjson"
	"repro/internal/daemon"
)

// benchApp is the application each arm of BenchmarkDaemonMultiRun executes:
// 16 one-core tasks on a 4-core claim.
var benchApp = []byte(`{"resource":{"name":"supermic","cores":4,"walltime_s":3600},"pipelines":[{"name":"p","stages":[{"name":"s0","tasks":[{"name":"t","executable":"sleep","duration_s":5,"cores":1,"copies":16}]}]}]}`)

// BenchmarkDaemonMultiRun compares the two hosting modes on K identical
// applications: K concurrent runs multiplexed by one entkd daemon over a
// shared broker and pilot pool, versus K sequential in-process runs each
// paying full infrastructure setup and teardown. The daemon arm amortizes
// the pilot and broker across the batch; the in-process arm is the
// embedded-mode baseline.
func BenchmarkDaemonMultiRun(b *testing.B) {
	const runs = 4
	b.Run("daemon-concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := daemon.New(daemon.Config{
				Resource:  "supermic",
				Cores:     4 * runs,
				Walltime:  72 * time.Hour,
				TimeScale: time.Microsecond,
				Seed:      1,
			})
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, runs)
			for k := 0; k < runs; k++ {
				id, err := d.Submit(fmt.Sprintf("tenant%d", k), false, benchApp)
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func(k int, id string) {
					defer wg.Done()
					errs[k] = d.Wait(context.Background(), id)
				}(k, id)
			}
			wg.Wait()
			d.Stop()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("inprocess-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 0; k < runs; k++ {
				desc, err := appjson.Parse(benchApp)
				if err != nil {
					b.Fatal(err)
				}
				pipes, _, err := desc.Build()
				if err != nil {
					b.Fatal(err)
				}
				am, err := entk.NewAppManager(entk.AppConfig{
					Resource: entk.Resource{
						Name:     desc.Resource.Name,
						Cores:    desc.Resource.Cores,
						Walltime: desc.Walltime(),
					},
					TimeScale: time.Microsecond,
					Seed:      1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := am.AddPipelines(pipes...); err != nil {
					b.Fatal(err)
				}
				if err := am.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
