package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: broker
// prefetch and consumer parallelism, the Emgr batch size, the number of
// RTS staging workers (the paper explicitly notes "multiple staging workers
// can be used to parallelize data staging"), and the host strain model.
// Run with: go test -bench=Ablation -benchmem

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/entk"
	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/hostmodel"
	"repro/internal/hpc"
	"repro/internal/journal"
	"repro/internal/rts"
	"repro/internal/saga"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// BenchmarkAblationBrokerPrefetch measures delivery throughput as a
// function of the consumer prefetch window.
func BenchmarkAblationBrokerPrefetch(b *testing.B) {
	for _, prefetch := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("prefetch-%d", prefetch), func(b *testing.B) {
			br := broker.New(broker.Options{})
			defer br.Close()
			br.DeclareQueue("q", broker.QueueOptions{})
			cons, err := br.Consume("q", prefetch)
			if err != nil {
				b.Fatal(err)
			}
			body := []byte(`{"uid":"task.1"}`)
			var done sync.WaitGroup
			done.Add(1)
			var received int64
			go func() {
				defer done.Done()
				for d := range cons.Deliveries() {
					d.Ack()
					if atomic.AddInt64(&received, 1) == int64(b.N) {
						return
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Publish("q", body) //nolint:errcheck
			}
			done.Wait()
		})
	}
}

// ablationPipelineMsgs is how many messages each iteration of the
// multi-consumer ablation moves end to end.
const ablationPipelineMsgs = 8192

// BenchmarkAblationBrokerConsumers measures aggregate throughput with 1, 2,
// 4 and 8 consumers on one queue (the Fig 6 tuning axis), comparing the
// single-lock ready ring (shards-1) against the sharded configuration
// (shards-8). Each iteration streams a fixed message volume through the
// batched hot path the workflow layers use — PublishBatch in, pull-mode
// ReceiveBatch/AckBatch out — so the number is consumer-side queue cost,
// not producer or memory noise.
func BenchmarkAblationBrokerConsumers(b *testing.B) {
	for _, consumers := range []int{1, 2, 4, 8} {
		for _, cfg := range []struct {
			label  string
			shards int
		}{{"shards-1", 1}, {"shards-8", 8}} {
			b.Run(fmt.Sprintf("consumers-%d/%s", consumers, cfg.label), func(b *testing.B) {
				const pubBatch = 256
				br := broker.New(broker.Options{})
				defer br.Close()
				br.DeclareQueue("q", broker.QueueOptions{Shards: cfg.shards})
				bodies := make([][]byte, pubBatch)
				for i := range bodies {
					bodies[i] = []byte(`{"uid":"task.1"}`)
				}
				conss := make([]*broker.Consumer, consumers)
				counts := make(chan int, 64)
				var wg sync.WaitGroup
				for c := range conss {
					cons, err := br.ConsumeBatch("q", 2*pubBatch)
					if err != nil {
						b.Fatal(err)
					}
					conss[c] = cons
					wg.Add(1)
					go func(cons *broker.Consumer) {
						defer wg.Done()
						for {
							ds, err := cons.ReceiveBatch(pubBatch)
							if err != nil {
								return // cancelled: benchmark over
							}
							broker.AckBatch(ds) //nolint:errcheck
							counts <- len(ds)
						}
					}(cons)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// One iteration = one fixed message volume through the
					// queue; the producer stays one iteration ahead at most,
					// so the backlog (and allocator noise) stays bounded.
					for k := 0; k < ablationPipelineMsgs/pubBatch; k++ {
						br.PublishBatch("q", bodies) //nolint:errcheck
					}
					for got := 0; got < ablationPipelineMsgs; {
						got += <-counts
					}
				}
				b.StopTimer()
				for _, cons := range conss {
					cons.Cancel()
				}
				wg.Wait()
				b.ReportMetric(float64(ablationPipelineMsgs*b.N)/b.Elapsed().Seconds(), "msgs/s")
			})
		}
	}
}

// ablationSchedulerTasks is how many tasks each iteration of the
// multi-scheduler ablation pushes through the agent end to end.
const ablationSchedulerTasks = 8192

// BenchmarkAblationSchedulers measures the pilot agent's dispatch
// throughput on a contention-bound pipeline — zero-duration 1-core tasks on
// a wide pilot, so the store drain + placement path is the bottleneck, not
// task execution — with 1, 2 and 8 scheduler loops over an 8-shard task
// store. schedulers-1 is the strict-FIFO serial agent (the paper's Fig 8
// dispatch bottleneck); schedulers-N is the work-stealing pool. On a
// single-core runner the spread is algorithmic only; the contention relief
// is architectural and shows at GOMAXPROCS > 1 (see ROADMAP.md).
func BenchmarkAblationSchedulers(b *testing.B) {
	for _, scheds := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("schedulers-%d", scheds), func(b *testing.B) {
			const submitBatch = 256
			clock := vclock.NewScaled(time.Nanosecond)
			session := saga.NewSession()
			defer session.Close()
			cluster, err := hpc.NewCluster(hpc.Spec{
				Name: "bench", Nodes: 64, CoresPerNode: 8,
				MaxWalltime: 1000000 * time.Hour,
			}, clock)
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			session.Register(saga.NewClusterAdapter(cluster)) //nolint:errcheck
			r, err := rts.New(rts.Config{
				Resource: core.ResourceDesc{
					Resource: "bench", Cores: 512, Walltime: 999999 * time.Hour,
				},
				Clock:       clock,
				Session:     session,
				Registry:    workload.NewRegistry(),
				Model:       rts.FastModel(),
				QueueShards: 8,
				Schedulers:  scheds,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := r.Start(context.Background()); err != nil {
				b.Fatal(err)
			}
			defer r.Stop() //nolint:errcheck
			descs := make([]core.TaskDescription, submitBatch)
			for i := range descs {
				descs[i] = core.TaskDescription{
					UID: fmt.Sprintf("t%04d", i), Executable: "sleep", Cores: 1,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One iteration = one fixed task volume submitted in batches
				// and drained to completion, so the number is agent-side
				// dispatch cost under a persistently non-empty store.
				for k := 0; k < ablationSchedulerTasks/submitBatch; k++ {
					if err := r.Submit(descs); err != nil {
						b.Fatal(err)
					}
				}
				for got := 0; got < ablationSchedulerTasks; got++ {
					if _, ok := <-r.Completions(); !ok {
						b.Fatal("completions closed mid-benchmark")
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ablationSchedulerTasks*b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// runEmgrBatchApp executes a 256-task application with the given Emgr batch
// bound and returns the wall time.
func runEmgrBatchApp(b *testing.B, batch int) {
	b.Helper()
	am, err := entk.NewAppManager(entk.AppConfig{
		Resource:  entk.Resource{Name: "comet", Cores: 256, Walltime: 47 * time.Hour},
		TimeScale: 20 * time.Microsecond,
		HostName:  "null",
	})
	if err != nil {
		b.Fatal(err)
	}
	// Reach into the core config through the facade.
	_ = am
	pipe := core.NewPipeline("batch")
	stage := core.NewStage("s")
	for i := 0; i < 256; i++ {
		t := core.NewTask("t")
		t.Executable = "sleep"
		t.Duration = 10 * time.Second
		stage.AddTask(t) //nolint:errcheck
	}
	pipe.AddStage(stage) //nolint:errcheck
	if err := am.AddPipelines(pipe); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := am.Run(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationEmgrBatch compares wall time of a 256-task application
// under different Emgr submission batch bounds.
func BenchmarkAblationEmgrBatch(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runEmgrBatchApp(b, batch)
			}
		})
	}
}

// BenchmarkAblationStagers measures the virtual staging makespan of 512
// staged tasks with 1, 2 and 4 staging workers — quantifying the
// parallel-staging trade-off the paper mentions for Fig 8.
func BenchmarkAblationStagers(b *testing.B) {
	for _, stagers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("stagers-%d", stagers), func(b *testing.B) {
			clock := vclock.NewScaled(time.Microsecond)
			fs, err := fsim.New(fsim.OLCFLustre(), clock, 1)
			if err != nil {
				b.Fatal(err)
			}
			files := []fsim.File{
				{Name: "l1", Link: true}, {Name: "l2", Link: true},
				{Name: "l3", Link: true}, {Name: "in", Bytes: 550 * 1024},
			}
			for i := 0; i < b.N; i++ {
				// Simulate the stager-pool serialization in virtual time.
				watermarks := make([]time.Duration, stagers)
				var makespan time.Duration
				for task := 0; task < 512; task++ {
					w := task % stagers
					watermarks[w] += fs.StageDuration(files)
					if watermarks[w] > makespan {
						makespan = watermarks[w]
					}
				}
				b.ReportMetric(makespan.Seconds(), "staging_s")
			}
		})
	}
}

// BenchmarkAblationHostStrain compares the effective per-message cost below
// and above the strain threshold (the Fig 8 management-overhead knee).
func BenchmarkAblationHostStrain(b *testing.B) {
	m, err := hostmodel.Lookup("xsede-vm")
	if err != nil {
		b.Fatal(err)
	}
	for _, tasks := range []int{16, 2048, 4096, 8192} {
		b.Run(fmt.Sprintf("tasks-%d", tasks), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += m.EffectiveMsgCost(tasks)
			}
			b.ReportMetric(float64(m.EffectiveMsgCost(tasks).Microseconds()), "cost_us")
			_ = total
		})
	}
}

// BenchmarkAblationDurableBroker quantifies the journal's cost on the
// publish path (durability vs raw queues).
func BenchmarkAblationDurableBroker(b *testing.B) {
	for _, durable := range []bool{false, true} {
		name := "volatile"
		if durable {
			name = "durable"
		}
		b.Run(name, func(b *testing.B) {
			var br *broker.Broker
			if durable {
				j, err := journalOpen(b)
				if err != nil {
					b.Fatal(err)
				}
				defer j.Close()
				br = broker.New(broker.Options{Journal: j})
			} else {
				br = broker.New(broker.Options{})
			}
			defer br.Close()
			br.DeclareQueue("q", broker.QueueOptions{Durable: durable})
			body := []byte(`{"uid":"task.1","state":"DONE"}`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Publish("q", body) //nolint:errcheck
				d, ok, _ := br.Get("q")
				if !ok {
					b.Fatal("lost message")
				}
				d.Ack()
			}
		})
	}
}

// journalOpen opens a temp journal for the durable-broker ablation.
func journalOpen(b *testing.B) (*journal.Journal, error) {
	b.Helper()
	return journal.Open(b.TempDir()+"/ablate.journal", journal.Options{})
}

// BenchmarkAblationTransferProtocols measures the modelled cost of moving a
// paper-scale seismogram (§III-A saves 0.15-1.5 GB per seismogram) through
// each SAGA transfer protocol. The series shows the calibrated trade-off:
// scp-class protocols win on small payloads, Globus Online's parallel
// streams win past its service-negotiation latency (~0.6 GB crossover).
func BenchmarkAblationTransferProtocols(b *testing.B) {
	for _, proto := range saga.Protocols() {
		for _, size := range []int64{150 << 20, 1500 << 20} {
			b.Run(fmt.Sprintf("%s-%dMB", proto, size>>20), func(b *testing.B) {
				clock := vclock.NewScaled(time.Nanosecond)
				ts, err := saga.NewTransferService(clock)
				if err != nil {
					b.Fatal(err)
				}
				var virtual time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := ts.Transfer(saga.TransferRequest{
						Bytes: size, Protocol: proto,
					})
					if err != nil {
						b.Fatal(err)
					}
					virtual += res.Duration
				}
				b.ReportMetric(virtual.Seconds()/float64(b.N), "vsec/transfer")
			})
		}
	}
}

// BenchmarkAblationBackfill compares batch-queue makespan with strict FIFO
// vs backfill scheduling for a pathological mix: alternating wide (full-
// machine) and narrow jobs. FIFO serializes everything behind each wide
// job; backfill slots the narrow jobs into the gaps.
func BenchmarkAblationBackfill(b *testing.B) {
	for _, backfill := range []bool{false, true} {
		name := "fifo"
		if backfill {
			name = "backfill"
		}
		b.Run(name, func(b *testing.B) {
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				clock := vclock.NewScaled(50 * time.Nanosecond)
				c, err := hpc.NewCluster(hpc.Spec{
					Name: "bench", Nodes: 8, CoresPerNode: 1,
					MaxWalltime: 100000 * time.Hour, Backfill: backfill,
				}, clock)
				if err != nil {
					b.Fatal(err)
				}
				start := clock.Now()
				var wg sync.WaitGroup
				for k := 0; k < 12; k++ {
					cores, dur := 1, 400*time.Second
					if k%3 == 0 {
						cores, dur = 8, 100*time.Second // wide blocker
					}
					j, err := c.Submit(hpc.JobDesc{Name: "j", Cores: cores, Walltime: time.Hour})
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func(j *hpc.Job, dur time.Duration) {
						defer wg.Done()
						<-j.Active()
						clock.Sleep(dur)
						c.Complete(j)
					}(j, dur)
				}
				wg.Wait()
				virtual += clock.Now().Sub(start)
				c.Close()
			}
			b.ReportMetric(virtual.Seconds()/float64(b.N), "vsec/makespan")
		})
	}
}
